"""The mapping-vector search: feasibility, optimality ordering, objectives."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.constraints import check_constraints
from repro.compiler.model import evaluate_mapping
from repro.compiler.search import (
    ScheduleSearch,
    ceil_tile_candidates,
    schedule_layer,
)
from repro.errors import ScheduleError
from repro.overlay.config import OverlayConfig
from repro.workloads.layers import ConvLayer, MatMulLayer


class TestCeilTileCandidates:
    @pytest.mark.parametrize(
        "size,cap,expected",
        [
            (8, 8, [1, 2, 3, 4, 8]),
            (1, 8, [1]),
            (7, 3, [1, 2, 3]),
            (14, 20, [1, 2, 3, 4, 5, 7, 14]),
        ],
    )
    def test_values(self, size, cap, expected):
        assert ceil_tile_candidates(size, cap) == expected

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ScheduleError):
            ceil_tile_candidates(0, 4)

    @given(size=st.integers(1, 500), cap=st.integers(1, 500))
    @settings(max_examples=200, deadline=None)
    def test_every_candidate_is_a_ceil_divisor(self, size, cap):
        for tile in ceil_tile_candidates(size, cap):
            assert 1 <= tile <= min(size, cap)
            m = -(-size // tile)
            assert -(-size // m) == tile  # tile is the minimal cover for m

    @given(size=st.integers(1, 300))
    @settings(max_examples=100, deadline=None)
    def test_contains_one_and_terminates(self, size):
        values = ceil_tile_candidates(size, size)
        assert values[0] == 1
        assert values[-1] == size


class TestSearchBasics:
    def test_winner_is_feasible(self, small_conv, tiny_config):
        schedule = schedule_layer(small_conv, tiny_config)
        assert check_constraints(small_conv, tiny_config, schedule.mapping) == []

    def test_winner_covers_all_maccs(self, small_conv, tiny_config):
        schedule = schedule_layer(small_conv, tiny_config)
        padded = schedule.mapping.padded_sizes()
        for name, size in small_conv.loop_sizes.items():
            assert padded[name] >= size

    def test_topk_sorted_best_first(self, small_conv, tiny_config):
        schedules = ScheduleSearch(
            small_conv, tiny_config, top_k=10
        ).run()
        cycles = [s.cycles for s in schedules]
        assert cycles == sorted(cycles)
        assert len(schedules) == 10

    def test_estimates_match_authoritative_model(self, small_conv, tiny_config):
        """The fast pricing path must agree with evaluate_mapping."""
        for schedule in ScheduleSearch(small_conv, tiny_config, top_k=5).run():
            authoritative = evaluate_mapping(
                small_conv, tiny_config, schedule.mapping
            )
            assert schedule.estimate.c_exe == authoritative.c_exe
            assert schedule.estimate.e_wbuf == pytest.approx(authoritative.e_wbuf)

    def test_mm_layer_schedules(self, small_mm, tiny_config):
        schedule = schedule_layer(small_mm, tiny_config)
        assert schedule.estimate.hardware_efficiency > 0.0

    def test_pointwise_conv_schedules(self, pointwise_conv, tiny_config):
        schedule = schedule_layer(pointwise_conv, tiny_config)
        assert check_constraints(
            pointwise_conv, tiny_config, schedule.mapping
        ) == []

    def test_strided_conv_schedules(self, strided_conv, tiny_config):
        schedule = schedule_layer(strided_conv, tiny_config)
        assert schedule.estimate.useful_maccs == strided_conv.maccs

    def test_single_tpe_config(self, small_mm):
        config = OverlayConfig(
            d1=1, d2=1, d3=1, s_actbuf_words=64,
            s_wbuf_words=512, s_psumbuf_words=128,
        )
        schedule = schedule_layer(small_mm, config)
        # One TPE: at least maccs cycles (double-pump stall may double it).
        assert schedule.cycles >= small_mm.maccs

    def test_unknown_objective_rejected(self, small_mm, tiny_config):
        with pytest.raises(ScheduleError, match="unknown objective"):
            ScheduleSearch(small_mm, tiny_config, objective="fastest")

    def test_bad_topk_rejected(self, small_mm, tiny_config):
        with pytest.raises(ScheduleError, match="top_k"):
            ScheduleSearch(small_mm, tiny_config, top_k=0)

    def test_describe_is_informative(self, small_conv, tiny_config):
        text = schedule_layer(small_conv, tiny_config).describe()
        assert "cycles" in text and "E_WBUF" in text


class TestObjectives:
    def test_balance_improves_e_wbuf(self, tiny_config):
        """Objective 2 trades a little time for much better WBUF use
        (the Fig. 7(a) vs (b) contrast) — never a worse score."""
        layer = ConvLayer(
            "c", 8, 16, in_h=12, in_w=12, kernel_h=3, kernel_w=3, padding=1
        )
        perf = schedule_layer(layer, tiny_config, objective="performance")
        bal = schedule_layer(layer, tiny_config, objective="balance")
        assert bal.estimate.score >= perf.estimate.score
        assert bal.estimate.e_wbuf >= perf.estimate.e_wbuf

    def test_performance_never_slower_than_balance(self, tiny_config):
        layer = ConvLayer(
            "c", 8, 16, in_h=12, in_w=12, kernel_h=3, kernel_w=3, padding=1
        )
        perf = schedule_layer(layer, tiny_config, objective="performance")
        bal = schedule_layer(layer, tiny_config, objective="balance")
        assert perf.cycles <= bal.cycles


class TestSearchQuality:
    def test_large_conv_high_efficiency(self, small_config):
        """A reuse-rich conv should schedule at > 70 % efficiency even on a
        small grid."""
        layer = ConvLayer(
            "c", 16, 24, in_h=16, in_w=16, kernel_h=3, kernel_w=3, padding=1
        )
        schedule = schedule_layer(layer, small_config)
        assert schedule.estimate.hardware_efficiency > 0.70

    def test_exhaustive_beats_or_equals_beamed(self, tiny_config):
        layer = ConvLayer("c", 4, 6, in_h=6, in_w=6, kernel_h=3, kernel_w=3)
        beamed = ScheduleSearch(
            layer, tiny_config, spatial_beam=20, temporal_beam=20
        ).run()[0]
        full = ScheduleSearch(
            layer, tiny_config, spatial_beam=None, temporal_beam=None
        ).run()[0]
        assert full.cycles <= beamed.cycles

    def test_candidates_counted(self, small_mm, tiny_config):
        search = ScheduleSearch(small_mm, tiny_config)
        search.run()
        assert search.candidates_evaluated > 0


@settings(max_examples=20, deadline=None)
@given(
    m=st.integers(2, 24),
    n=st.integers(2, 16),
    hw=st.integers(2, 10),
    k=st.sampled_from([1, 3]),
)
def test_search_always_finds_feasible_schedule(m, n, hw, k):
    """Property: any reasonable conv layer gets a feasible schedule whose
    padded sizes cover the workload (Eqn 11)."""
    config = OverlayConfig(
        d1=3, d2=2, d3=2, s_actbuf_words=64,
        s_wbuf_words=256, s_psumbuf_words=512,
    )
    layer = ConvLayer(
        "c", in_channels=n, out_channels=m, in_h=hw, in_w=hw,
        kernel_h=k, kernel_w=k, padding=k // 2,
    )
    schedule = ScheduleSearch(
        layer, config, spatial_beam=40, temporal_beam=40
    ).run()[0]
    assert check_constraints(layer, config, schedule.mapping) == []
    assert schedule.estimate.hardware_efficiency > 0.0
