"""ABFT kernels: fault-free equivalence, syndrome algebra, corrections.

The property fuzz is the load-bearing guarantee: with no injected fault
the ABFT data region must equal the unprotected golden kernels **bit for
bit** over random shapes, strides, paddings, groups, and operands pushed
to the wrap-48 boundary — the checksums are congruences, not tolerances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import IntegrityError, SimulationError
from repro.fixedpoint import wrap48
from repro.integrity import (
    abft_conv2d_int16,
    abft_layer_output,
    abft_matmul_int16,
)
from repro.sim.functional import golden_layer_output, random_layer_operands
from repro.workloads.layers import ConvLayer, MatMulLayer

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

conv_strategy = st.builds(
    ConvLayer,
    name=st.just("fuzz_conv"),
    in_channels=st.sampled_from([2, 4, 6]),
    out_channels=st.sampled_from([2, 4, 6]),
    in_h=st.integers(4, 10),
    in_w=st.integers(4, 10),
    kernel_h=st.integers(1, 3),
    kernel_w=st.integers(1, 3),
    stride=st.integers(1, 2),
    padding=st.integers(0, 1),
    groups=st.sampled_from([1, 2]),
)

mm_strategy = st.builds(
    MatMulLayer,
    name=st.just("fuzz_mm"),
    in_features=st.integers(1, 24),
    out_features=st.integers(1, 12),
    batch=st.integers(1, 6),
)


class TestFaultFreeEquivalence:
    @given(layer=mm_strategy, seed=st.integers(0, 2**32 - 1),
           magnitude=st.sampled_from([3, 127, 32767]))
    @_SETTINGS
    def test_mm_matches_golden_bitwise(self, layer, seed, magnitude):
        rng = np.random.default_rng(seed)
        weights, acts = random_layer_operands(layer, rng, magnitude)
        result = abft_layer_output(layer, weights, acts)
        assert not result.detected and not result.corrected
        assert result.output.dtype == np.int64
        assert np.array_equal(
            result.output, golden_layer_output(layer, weights, acts)
        )

    @given(layer=conv_strategy, seed=st.integers(0, 2**32 - 1),
           magnitude=st.sampled_from([3, 127, 32767]))
    @_SETTINGS
    def test_conv_matches_golden_bitwise(self, layer, seed, magnitude):
        rng = np.random.default_rng(seed)
        weights, acts = random_layer_operands(layer, rng, magnitude)
        result = abft_layer_output(layer, weights, acts)
        assert not result.detected
        assert np.array_equal(
            result.output, golden_layer_output(layer, weights, acts)
        )

    def test_wrap_boundary_operands(self):
        # Extremal int16 operands force the accumulators through the
        # 2**48 wrap; the checksum identities must survive it.
        layer = MatMulLayer("wrap", in_features=4096, out_features=3,
                            batch=2)
        weights = np.full((3, 4096), -32768, dtype=np.int16)
        acts = np.full((4096, 2), 32767, dtype=np.int16)
        result = abft_layer_output(layer, weights, acts)
        assert not result.detected
        assert np.array_equal(
            result.output, golden_layer_output(layer, weights, acts)
        )

    def test_macc_accounting_mm(self):
        layer = MatMulLayer("acct", in_features=7, out_features=5, batch=3)
        rng = np.random.default_rng(0)
        result = abft_layer_output(layer, *random_layer_operands(layer, rng))
        assert result.data_maccs == 7 * 5 * 3
        assert result.checksum_maccs == 7 * (5 + 3 + 1)
        assert result.overhead_fraction == pytest.approx(
            1 / 5 + 1 / 3 + 1 / 15
        )

    def test_macc_accounting_grouped_conv(self):
        layer = ConvLayer("acct", in_channels=4, out_channels=6, in_h=5,
                          in_w=5, kernel_h=3, kernel_w=3, padding=1,
                          groups=2)
        rng = np.random.default_rng(0)
        result = abft_layer_output(layer, *random_layer_operands(layer, rng))
        k = 2 * 3 * 3
        assert result.data_maccs == layer.maccs == 2 * 3 * k * 25
        assert result.checksum_maccs == 2 * k * (3 + 25 + 1)


class TestSyndromeAlgebra:
    @pytest.fixture()
    def mm(self):
        layer = MatMulLayer("syn", in_features=11, out_features=6, batch=4)
        rng = np.random.default_rng(42)
        weights, acts = random_layer_operands(layer, rng)
        return layer, weights, acts

    def test_psum_flip_corrected_in_place(self, mm):
        layer, weights, acts = mm
        golden = golden_layer_output(layer, weights, acts)
        result = abft_layer_output(layer, weights, acts,
                                   psum_flips=((9, 30),))
        assert result.detected and result.corrected
        assert result.corrected_at == ((9 // 4, 9 % 4),)
        assert np.array_equal(result.output, golden)
        assert np.array_equal(result.output_or_raise(), golden)

    def test_weight_flip_fires_columns_only(self, mm):
        layer, weights, acts = mm
        result = abft_layer_output(layer, weights, acts,
                                   weight_flips=((12, 7),))
        assert result.detected and not result.corrected
        assert result.n_row_syndromes == 0
        assert result.n_col_syndromes > 0
        with pytest.raises(IntegrityError) as err:
            result.output_or_raise()
        assert err.value.detected == result.n_col_syndromes

    def test_act_flip_fires_rows_only(self, mm):
        layer, weights, acts = mm
        result = abft_layer_output(layer, weights, acts,
                                   act_flips=((17, 3),))
        assert result.detected and not result.corrected
        assert result.n_col_syndromes == 0
        assert result.n_row_syndromes > 0

    def test_double_psum_flip_not_correctable(self, mm):
        layer, weights, acts = mm
        result = abft_layer_output(
            layer, weights, acts, psum_flips=((0, 5), (23, 5)),
        )
        assert result.detected and not result.corrected
        with pytest.raises(IntegrityError):
            result.output_or_raise()

    def test_uncorrected_output_is_the_corrupted_result(self, mm):
        # Detection must not silently alter the data region: callers
        # that ignore the verdict see exactly the corrupted kernel out.
        from repro.sim.functional import corrupted_layer_output
        layer, weights, acts = mm
        result = abft_layer_output(layer, weights, acts,
                                   weight_flips=((3, 11),))
        expected = corrupted_layer_output(layer, weights, acts,
                                          weight_flips=((3, 11),))
        assert np.array_equal(result.output, expected)

    def test_conv_psum_flip_corrected_at_output_coord(self):
        layer = ConvLayer("syn_conv", in_channels=3, out_channels=4,
                          in_h=6, in_w=6, kernel_h=3, kernel_w=3,
                          padding=1)
        rng = np.random.default_rng(7)
        weights, acts = random_layer_operands(layer, rng)
        golden = golden_layer_output(layer, weights, acts)
        flat = 2 * 36 + 13  # channel 2, spatial element 13
        result = abft_layer_output(layer, weights, acts,
                                   psum_flips=((flat, 40),))
        assert result.corrected
        assert result.corrected_at == ((2, 13 // 6, 13 % 6),)
        assert np.array_equal(result.output, golden)

    def test_zero_delta_wrap_identity(self, mm):
        # Flipping bit b then a compensating pattern that sums to zero
        # mod 2**48 cannot happen with a single flip; sanity-check the
        # wrap arithmetic instead: syndromes are exact congruences.
        layer, weights, acts = mm
        result = abft_layer_output(layer, weights, acts)
        out = result.output
        assert np.array_equal(out, wrap48(out))


class TestValidation:
    def test_shape_mismatch_raises(self):
        with pytest.raises(SimulationError):
            abft_matmul_int16(np.zeros((2, 3), np.int16),
                              np.zeros((4, 2), np.int16))

    def test_flip_out_of_range_raises(self):
        w = np.ones((2, 3), np.int16)
        a = np.ones((3, 2), np.int16)
        with pytest.raises(IntegrityError):
            abft_matmul_int16(w, a, weight_flips=((6, 0),))
        with pytest.raises(IntegrityError):
            abft_matmul_int16(w, a, act_flips=((0, 16),))
        with pytest.raises(IntegrityError):
            abft_matmul_int16(w, a, psum_flips=((0, 48),))

    def test_conv_group_mismatch_raises(self):
        with pytest.raises(SimulationError):
            abft_conv2d_int16(
                np.zeros((4, 3, 3, 3), np.int16),
                np.zeros((4, 6, 6), np.int16),
                groups=2,
            )

    def test_layer_dispatch_checks_shapes(self):
        layer = MatMulLayer("bad", in_features=3, out_features=2)
        with pytest.raises(SimulationError):
            abft_layer_output(layer, np.zeros((2, 4), np.int16),
                              np.zeros((3, 1), np.int16))
