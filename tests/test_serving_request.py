"""Arrival generators and request lifecycle."""

import pytest

from repro.errors import ServingError
from repro.serving.request import (
    InferenceRequest,
    make_requests,
    poisson_arrivals,
    trace_arrivals,
    uniform_arrivals,
)


class TestPoissonArrivals:
    def test_deterministic_per_seed(self):
        a = poisson_arrivals(100.0, 50, seed=7)
        b = poisson_arrivals(100.0, 50, seed=7)
        assert a == b

    def test_seed_changes_trace(self):
        assert poisson_arrivals(100.0, 50, seed=7) != \
            poisson_arrivals(100.0, 50, seed=8)

    def test_sorted_and_positive(self):
        times = poisson_arrivals(500.0, 200, seed=3)
        assert all(t >= 0 for t in times)
        assert times == sorted(times)

    def test_mean_rate_approximates_target(self):
        rate = 1000.0
        times = poisson_arrivals(rate, 5000, seed=1)
        observed = len(times) / times[-1]
        assert observed == pytest.approx(rate, rel=0.1)

    def test_seed_is_keyword_only(self):
        with pytest.raises(TypeError):
            poisson_arrivals(100.0, 10, 7)  # type: ignore[misc]

    def test_start_offset(self):
        times = poisson_arrivals(100.0, 10, seed=0, start_s=5.0)
        assert times[0] > 5.0

    @pytest.mark.parametrize("rate,n", [(0.0, 10), (-1.0, 10), (10.0, 0)])
    def test_invalid_args(self, rate, n):
        with pytest.raises(ServingError):
            poisson_arrivals(rate, n, seed=0)


class TestUniformArrivals:
    def test_even_spacing(self):
        times = uniform_arrivals(100.0, 5)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(0.01) for g in gaps)

    def test_invalid_rate(self):
        with pytest.raises(ServingError):
            uniform_arrivals(0.0, 5)


class TestTraceArrivals:
    def test_valid_trace_passes_through(self):
        assert trace_arrivals([0.0, 0.5, 0.5, 1.0]) == [0.0, 0.5, 0.5, 1.0]

    def test_empty_rejected(self):
        with pytest.raises(ServingError):
            trace_arrivals([])

    def test_unsorted_rejected(self):
        with pytest.raises(ServingError):
            trace_arrivals([1.0, 0.5])

    def test_negative_rejected(self):
        with pytest.raises(ServingError):
            trace_arrivals([-0.1, 0.5])


class TestRequests:
    def test_make_requests_ids_dense(self):
        reqs = make_requests([0.1, 0.2, 0.3], "m")
        assert [r.request_id for r in reqs] == [0, 1, 2]
        assert all(r.model == "m" for r in reqs)

    def test_latency_requires_completion(self):
        req = InferenceRequest(request_id=0, model="m", arrival_s=0.0)
        with pytest.raises(ServingError):
            _ = req.latency_s
        req.dispatch_s = 0.5
        req.complete_s = 1.25
        assert req.queue_wait_s == pytest.approx(0.5)
        assert req.latency_s == pytest.approx(1.25)
