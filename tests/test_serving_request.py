"""Arrival generators and request lifecycle."""

import math

import pytest

from repro.errors import ServingError
from repro.serving.request import (
    InferenceRequest,
    RetryPolicy,
    make_requests,
    poisson_arrivals,
    trace_arrivals,
    uniform_arrivals,
)


class TestPoissonArrivals:
    def test_deterministic_per_seed(self):
        a = poisson_arrivals(100.0, 50, seed=7)
        b = poisson_arrivals(100.0, 50, seed=7)
        assert a == b

    def test_seed_changes_trace(self):
        assert poisson_arrivals(100.0, 50, seed=7) != \
            poisson_arrivals(100.0, 50, seed=8)

    def test_sorted_and_positive(self):
        times = poisson_arrivals(500.0, 200, seed=3)
        assert all(t >= 0 for t in times)
        assert times == sorted(times)

    def test_mean_rate_approximates_target(self):
        rate = 1000.0
        times = poisson_arrivals(rate, 5000, seed=1)
        observed = len(times) / times[-1]
        assert observed == pytest.approx(rate, rel=0.1)

    def test_seed_is_keyword_only(self):
        with pytest.raises(TypeError):
            poisson_arrivals(100.0, 10, 7)  # type: ignore[misc]

    def test_start_offset(self):
        times = poisson_arrivals(100.0, 10, seed=0, start_s=5.0)
        assert times[0] > 5.0

    @pytest.mark.parametrize("rate,n", [(0.0, 10), (-1.0, 10), (10.0, 0)])
    def test_invalid_args(self, rate, n):
        with pytest.raises(ServingError):
            poisson_arrivals(rate, n, seed=0)

    @pytest.mark.parametrize("rate", [math.nan, math.inf, -math.inf])
    def test_non_finite_rate_rejected(self, rate):
        """NaN compares false against everything, so a NaN rate used to
        slip past the <= 0 check and poison every downstream gap."""
        with pytest.raises(ServingError):
            poisson_arrivals(rate, 10, seed=0)

    def test_non_finite_start_rejected(self):
        with pytest.raises(ServingError):
            poisson_arrivals(100.0, 10, seed=0, start_s=math.nan)


class TestUniformArrivals:
    def test_even_spacing(self):
        times = uniform_arrivals(100.0, 5)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(0.01) for g in gaps)

    def test_invalid_rate(self):
        with pytest.raises(ServingError):
            uniform_arrivals(0.0, 5)

    @pytest.mark.parametrize("rate", [math.nan, math.inf])
    def test_non_finite_rate_rejected(self, rate):
        with pytest.raises(ServingError):
            uniform_arrivals(rate, 5)


class TestTraceArrivals:
    def test_valid_trace_passes_through(self):
        assert trace_arrivals([0.0, 0.5, 0.5, 1.0]) == [0.0, 0.5, 0.5, 1.0]

    def test_empty_rejected(self):
        with pytest.raises(ServingError):
            trace_arrivals([])

    def test_unsorted_rejected(self):
        with pytest.raises(ServingError):
            trace_arrivals([1.0, 0.5])

    def test_negative_rejected(self):
        with pytest.raises(ServingError):
            trace_arrivals([-0.1, 0.5])

    @pytest.mark.parametrize("bad", [math.nan, math.inf])
    def test_non_finite_rejected(self, bad):
        with pytest.raises(ServingError):
            trace_arrivals([0.0, bad])


class TestRequests:
    def test_make_requests_ids_dense(self):
        reqs = make_requests([0.1, 0.2, 0.3], "m")
        assert [r.request_id for r in reqs] == [0, 1, 2]
        assert all(r.model == "m" for r in reqs)

    def test_latency_requires_completion(self):
        req = InferenceRequest(request_id=0, model="m", arrival_s=0.0)
        with pytest.raises(ServingError):
            _ = req.latency_s
        req.dispatch_s = 0.5
        req.complete_s = 1.25
        assert req.queue_wait_s == pytest.approx(0.5)
        assert req.latency_s == pytest.approx(1.25)


class TestDeadlines:
    def test_deadline_is_relative_to_arrival(self):
        req = InferenceRequest(request_id=0, model="m", arrival_s=2.0,
                               deadline_s=0.5)
        assert req.deadline_at_s == pytest.approx(2.5)
        assert not req.expired(2.49)
        assert req.expired(2.5)

    def test_no_deadline_never_expires(self):
        req = InferenceRequest(request_id=0, model="m", arrival_s=0.0)
        assert math.isinf(req.deadline_at_s)
        assert not req.expired(1e9)

    @pytest.mark.parametrize("deadline", [0.0, -1.0, math.nan, math.inf])
    def test_invalid_deadline_rejected(self, deadline):
        with pytest.raises(ServingError):
            InferenceRequest(request_id=0, model="m", arrival_s=0.0,
                             deadline_s=deadline)

    def test_non_finite_arrival_rejected(self):
        with pytest.raises(ServingError):
            InferenceRequest(request_id=0, model="m", arrival_s=math.nan)

    def test_make_requests_applies_deadline(self):
        reqs = make_requests([0.1, 0.2], "m", deadline_s=0.05)
        assert [r.deadline_at_s for r in reqs] == \
            [pytest.approx(0.15), pytest.approx(0.25)]


class TestRetryPolicy:
    def test_backoff_doubles_then_caps(self):
        policy = RetryPolicy(max_attempts=10, backoff_base_s=1e-3,
                             backoff_cap_s=4e-3)
        assert policy.backoff_s(1) == pytest.approx(1e-3)
        assert policy.backoff_s(2) == pytest.approx(2e-3)
        assert policy.backoff_s(3) == pytest.approx(4e-3)
        assert policy.backoff_s(4) == pytest.approx(4e-3)  # capped
        assert policy.backoff_s(20) == pytest.approx(4e-3)

    @pytest.mark.parametrize("kwargs", [
        dict(max_attempts=0),
        dict(backoff_base_s=-1e-3),
        dict(backoff_cap_s=-1.0),
        dict(backoff_base_s=math.nan),
        dict(backoff_cap_s=math.inf),
    ])
    def test_invalid_policy(self, kwargs):
        with pytest.raises(ServingError):
            RetryPolicy(**kwargs)

    def test_backoff_needs_failed_attempt(self):
        with pytest.raises(ServingError):
            RetryPolicy().backoff_s(0)
