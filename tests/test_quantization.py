"""Quantization error analysis."""

import numpy as np
import pytest

from repro.analysis.quantization import (
    precision_sweep,
    quantized_layer_error,
)
from repro.errors import FTDLError
from repro.workloads.layers import ConvLayer, EwopLayer, MatMulLayer


class TestQuantizedLayerError:
    def test_16bit_is_high_fidelity(self, small_conv, rng):
        weights = rng.normal(scale=0.5, size=(8, 6, 3, 3))
        acts = rng.normal(size=(6, 8, 8))
        report = quantized_layer_error(small_conv, weights, acts, 16)
        assert report.sqnr_db > 60.0
        assert report.max_abs_error < 0.01 * report.output_rms

    def test_mm_layer(self, small_mm, rng):
        weights = rng.normal(size=(10, 24))
        acts = rng.normal(size=(24, 4))
        report = quantized_layer_error(small_mm, weights, acts, 12)
        assert report.sqnr_db > 40.0

    def test_effective_bits(self, small_mm, rng):
        weights = rng.normal(size=(10, 24))
        acts = rng.normal(size=(24, 4))
        report = quantized_layer_error(small_mm, weights, acts, 8)
        assert report.effective_bits == pytest.approx(report.sqnr_db / 6.02)

    def test_zero_signal(self, small_mm):
        report = quantized_layer_error(
            small_mm, np.zeros((10, 24)), np.zeros((24, 4)), 8
        )
        assert report.sqnr_db == float("inf")  # zero error on zero signal

    def test_ewop_rejected(self, rng):
        layer = EwopLayer("e", op="relu", n_elements=4)
        with pytest.raises(FTDLError):
            quantized_layer_error(layer, np.zeros(1), np.zeros(1), 8)


class TestPrecisionSweep:
    def test_sqnr_monotone_in_bits(self, small_conv, rng):
        """More bits, less noise — the ~6 dB/bit staircase."""
        reports = precision_sweep(small_conv, rng)
        sqnrs = [r.sqnr_db for r in reports]
        assert sqnrs == sorted(sqnrs)

    def test_roughly_six_db_per_bit(self, small_mm, rng):
        reports = precision_sweep(small_mm, rng, bit_widths=(6, 8, 10, 12))
        slopes = [
            (b.sqnr_db - a.sqnr_db) / (b.n_bits - a.n_bits)
            for a, b in zip(reports, reports[1:])
        ]
        for slope in slopes:
            assert 4.0 < slope < 8.0

    def test_conv_and_mm_both_supported(self, small_conv, small_mm, rng):
        assert len(precision_sweep(small_conv, rng, bit_widths=(8, 16))) == 2
        assert len(precision_sweep(small_mm, rng, bit_widths=(8, 16))) == 2

    def test_strided_conv_reference_correct(self, strided_conv, rng):
        """The float reference handles stride/padding like the golden."""
        report = quantized_layer_error(
            strided_conv,
            rng.normal(size=(6, 4, 3, 3)),
            rng.normal(size=(4, 11, 11)),
            16,
        )
        assert report.sqnr_db > 60.0
