"""Unit-convention helpers."""

import pytest

from repro.units import (
    BYTES_PER_WORD,
    ceil_div,
    gbps_to_words_per_cycle,
    mhz_to_period_ns,
    period_ns_to_mhz,
    words_to_bytes,
)


class TestFrequencyConversions:
    def test_mhz_to_period_650(self):
        assert mhz_to_period_ns(650.0) == pytest.approx(1.5385, abs=1e-3)

    def test_round_trip(self):
        assert period_ns_to_mhz(mhz_to_period_ns(740.0)) == pytest.approx(740.0)

    def test_rejects_zero_frequency(self):
        with pytest.raises(ValueError):
            mhz_to_period_ns(0.0)

    def test_rejects_negative_period(self):
        with pytest.raises(ValueError):
            period_ns_to_mhz(-1.0)


class TestBandwidth:
    def test_26gbps_at_650mhz(self):
        # 26e9 B/s / 650e6 cyc/s = 40 B/cycle = 20 words/cycle.
        assert gbps_to_words_per_cycle(26.0, 650.0) == pytest.approx(20.0)

    def test_words_to_bytes(self):
        assert words_to_bytes(100) == 100 * BYTES_PER_WORD


class TestCeilDiv:
    @pytest.mark.parametrize(
        "a,b,expected",
        [(0, 1, 0), (1, 1, 1), (7, 3, 3), (9, 3, 3), (10, 3, 4), (1, 100, 1)],
    )
    def test_values(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_rejects_zero_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(5, 0)
