"""Double-pump clock planning."""

import pytest

from repro.errors import ClockingError
from repro.fpga.clocking import ClockPlan, plan_double_pump
from repro.fpga.devices import get_device


@pytest.fixture
def vu125():
    return get_device("vu125")


class TestPlanDoublePump:
    def test_fastest_plan_is_dsp_limited(self, vu125):
        plan = plan_double_pump(vu125)
        # 2 x BRAM fmax (1056) exceeds DSP fmax (740) -> DSP binds.
        assert plan.clk_h_mhz == vu125.dsp.fmax_mhz
        assert plan.clk_l_mhz == pytest.approx(plan.clk_h_mhz / 2)

    def test_target_caps_clock(self, vu125):
        plan = plan_double_pump(vu125, target_clk_h_mhz=650.0)
        assert plan.clk_h_mhz == 650.0
        assert plan.clk_l_mhz == 325.0

    def test_weight_reuse_cycles(self, vu125):
        assert plan_double_pump(vu125).weight_reuse_cycles == 2
        assert plan_double_pump(vu125, double_pump=False).weight_reuse_cycles == 1

    def test_single_clock_is_bram_limited(self, vu125):
        plan = plan_double_pump(vu125, double_pump=False)
        assert plan.clk_h_mhz == vu125.bram.fmax_mhz
        assert plan.clk_l_mhz == plan.clk_h_mhz

    def test_double_pump_roughly_doubles_throughput(self, vu125):
        # The point of §III-A2: the MACC rate gain of double pumping.
        with_dp = plan_double_pump(vu125).clk_h_mhz
        without = plan_double_pump(vu125, double_pump=False).clk_h_mhz
        assert with_dp / without > 1.35

    def test_rejects_nonpositive_target(self, vu125):
        with pytest.raises(ClockingError):
            plan_double_pump(vu125, target_clk_h_mhz=0.0)


class TestClockPlanValidation:
    def test_ratio_must_be_two(self, vu125):
        plan = ClockPlan(clk_h_mhz=600.0, clk_l_mhz=400.0, double_pump=True)
        with pytest.raises(ClockingError, match="2 x CLK_l"):
            plan.validate(vu125)

    def test_bram_overclock_rejected(self, vu125):
        plan = ClockPlan(clk_h_mhz=740.0, clk_l_mhz=740.0, double_pump=False)
        with pytest.raises(ClockingError, match="BRAM"):
            plan.validate(vu125)

    def test_dsp_overclock_rejected(self, vu125):
        plan = ClockPlan(clk_h_mhz=900.0, clk_l_mhz=450.0, double_pump=True)
        with pytest.raises(ClockingError, match="DSP"):
            plan.validate(vu125)

    def test_single_clock_mismatch_rejected(self, vu125):
        plan = ClockPlan(clk_h_mhz=500.0, clk_l_mhz=400.0, double_pump=False)
        with pytest.raises(ClockingError, match="single-clock"):
            plan.validate(vu125)

    def test_nonpositive_frequency_rejected(self, vu125):
        plan = ClockPlan(clk_h_mhz=-1.0, clk_l_mhz=-0.5, double_pump=True)
        with pytest.raises(ClockingError, match="positive"):
            plan.validate(vu125)
