"""Metrics registry: counters, gauges, histograms, null registry."""

import pytest

from repro.errors import TraceError
from repro.trace.metrics import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    as_metrics,
)


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "requests")
        c.inc()
        c.inc(2.0)
        assert c.value() == 3.0

    def test_labeled_series_are_independent(self):
        c = MetricsRegistry().counter("drops", "")
        c.inc(reason="deadline")
        c.inc(2, reason="crash")
        assert c.value(reason="deadline") == 1.0
        assert c.value(reason="crash") == 2.0
        assert c.value(reason="other") == 0.0
        assert len(c.series()) == 2

    def test_label_order_does_not_matter(self):
        c = MetricsRegistry().counter("x", "")
        c.inc(a="1", b="2")
        assert c.value(b="2", a="1") == 1.0

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("x", "")
        with pytest.raises(TraceError):
            c.inc(-1.0)
        with pytest.raises(TraceError):
            c.inc(float("nan"))

    def test_bad_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(TraceError):
            reg.counter("9starts_with_digit", "")
        with pytest.raises(TraceError):
            reg.counter("has-dash", "")
        with pytest.raises(TraceError):
            reg.counter("ok", "").inc(**{"__reserved": 1})


class TestGauge:
    def test_last_value_wins(self):
        g = MetricsRegistry().gauge("depth", "")
        g.set(3)
        g.set(7, replica="r0")
        g.set(5)
        assert g.value() == 5.0
        assert g.value(replica="r0") == 7.0

    def test_unset_series_raises(self):
        g = MetricsRegistry().gauge("depth", "")
        with pytest.raises(TraceError):
            g.value()


class TestHistogram:
    def test_observe_and_cumulative_buckets(self):
        h = MetricsRegistry().histogram("lat", "", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 1.7, 5.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(8.7)
        assert h.cumulative_buckets() == [1, 3, 4]  # <=1, <=2, +Inf

    def test_default_buckets_strictly_increasing(self):
        buckets = Histogram.DEFAULT_BUCKETS
        assert list(buckets) == sorted(set(buckets))

    def test_bad_buckets_rejected(self):
        with pytest.raises(TraceError):
            Histogram("h", "", buckets=(2.0, 1.0))
        with pytest.raises(TraceError):
            Histogram("h", "", buckets=(1.0, float("inf")))
        with pytest.raises(TraceError):
            Histogram("h", "", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        a = reg.counter("x", "first help wins")
        b = reg.counter("x", "ignored")
        assert a is b
        assert a.help == "first help wins"
        assert len(reg) == 1

    def test_kind_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x", "")
        with pytest.raises(TraceError):
            reg.gauge("x", "")
        with pytest.raises(TraceError):
            reg.histogram("x", "")

    def test_metrics_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zeta", "")
        reg.gauge("alpha", "")
        assert [m.name for m in reg.metrics()] == ["alpha", "zeta"]


class TestNullRegistry:
    def test_records_nothing(self):
        reg = NullMetricsRegistry()
        reg.counter("x", "").inc(5, reason="y")
        reg.gauge("g", "").set(3)
        reg.histogram("h", "").observe(1.0)
        assert len(reg) == 0
        assert reg.metrics() == []
        assert not reg.enabled

    def test_null_instruments_read_as_zero(self):
        reg = NullMetricsRegistry()
        assert reg.counter("x", "").value() == 0.0
        assert reg.histogram("h", "").count() == 0

    def test_as_metrics_normalizes(self):
        assert as_metrics(None) is NULL_METRICS
        real = MetricsRegistry()
        assert as_metrics(real) is real
