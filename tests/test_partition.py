"""Multi-FPGA partitioning and deployment planning."""

import pytest

from repro.analysis.partition import (
    partition_by_weight_groups,
    plan_deployment,
)
from repro.errors import FTDLError, PartitionError
from repro.overlay.config import OverlayConfig
from repro.units import BYTES_PER_WORD
from repro.workloads.layers import ConvLayer, EwopLayer, MatMulLayer
from repro.workloads.network import Network


def _net() -> Network:
    return Network(
        name="n", application="test",
        layers=(
            ConvLayer("c1", 4, 8, in_h=8, in_w=8, kernel_h=3, kernel_w=3,
                      padding=1),
            EwopLayer("r1", op="relu", n_elements=8 * 64),
            ConvLayer("c2", 8, 8, in_h=8, in_w=8, kernel_h=3, kernel_w=3,
                      padding=1),
            EwopLayer("r2", op="relu", n_elements=8 * 64),
            MatMulLayer("fc1", in_features=512, out_features=32),
            MatMulLayer("fc2", in_features=32, out_features=10),
        ),
    )


def _tied_net() -> Network:
    return Network(
        name="tied", application="test",
        layers=tuple(
            MatMulLayer(f"t{i}", 16, 16, weight_group=f"g{i % 2}")
            for i in range(8)
        ),
    )


class TestPartitioning:
    def test_covers_all_layers_once(self):
        net = _net()
        parts = partition_by_weight_groups(net, 3)
        names = [l.name for p in parts for l in p.layers]
        assert names == [l.name for l in net.layers]

    def test_single_device_is_whole_network(self):
        parts = partition_by_weight_groups(_net(), 1)
        assert len(parts) == 1
        assert len(parts[0].layers) == len(_net().layers)

    def test_ewop_follows_producer(self):
        parts = partition_by_weight_groups(_net(), 3)
        for part in parts:
            layer_names = [l.name for l in part.layers]
            if "r1" in layer_names:
                assert "c1" in layer_names
            if "r2" in layer_names:
                assert "c2" in layer_names

    def test_weight_groups_stay_together(self):
        parts = partition_by_weight_groups(_tied_net(), 2)
        for part in parts:
            groups = {l.weight_group for l in part.accelerated_layers()}
            # No group is split across partitions: each partition's groups
            # are disjoint from the others'.
            for other in parts:
                if other is part:
                    continue
                other_groups = {
                    l.weight_group for l in other.accelerated_layers()
                }
                assert not (groups & other_groups)

    def test_more_devices_than_groups(self):
        parts = partition_by_weight_groups(_tied_net(), 10)
        assert 1 <= len(parts) <= 2  # only two groups exist

    def test_balanced_by_unique_bytes(self):
        net = _net()
        parts = partition_by_weight_groups(net, 2)
        sizes = [p.weight_words for p in parts]
        assert max(sizes) < net.weight_words  # both sides got something

    def test_invalid_device_count(self):
        with pytest.raises(FTDLError):
            partition_by_weight_groups(_net(), 0)


class TestDeploymentPlan:
    @pytest.fixture
    def config(self):
        return OverlayConfig(
            d1=4, d2=2, d3=2, s_actbuf_words=128,
            s_wbuf_words=1024, s_psumbuf_words=2048,
        )

    def test_residency_detected(self, config):
        """The demo net's partitions fit the 16-TPE WBUF budget."""
        plan = plan_deployment(_net(), config, n_devices=2)
        budget = config.n_tpe * config.s_wbuf_words * BYTES_PER_WORD
        for stage in plan.stages:
            assert stage.resident == (stage.stored_bytes <= budget)

    def test_pipeline_bottleneck(self, config):
        plan = plan_deployment(_net(), config, n_devices=2)
        assert plan.bottleneck_cycles == max(
            s.result.total_cycles for s in plan.stages
        )
        assert plan.pipeline_fps > 0

    def test_pipeline_beats_or_matches_stage_sum(self, config):
        plan = plan_deployment(_net(), config, n_devices=3)
        serial = sum(s.result.total_cycles for s in plan.stages)
        assert plan.bottleneck_cycles <= serial

    def test_single_device_plan(self, config):
        plan = plan_deployment(_net(), config, n_devices=1)
        assert plan.n_devices == 1


class TestDeploymentEdgeCases:
    @pytest.fixture
    def config(self):
        return OverlayConfig(
            d1=4, d2=2, d3=2, s_actbuf_words=128,
            s_wbuf_words=1024, s_psumbuf_words=2048,
        )

    def test_single_device_matches_whole_network(self, config):
        """n_devices=1 keeps every layer in one stage, nothing dropped."""
        plan = plan_deployment(_net(), config, n_devices=1)
        (stage,) = plan.stages
        assert [l.name for l in stage.partition.layers] == \
            [l.name for l in _net().layers]
        assert plan.bottleneck_cycles == stage.result.total_cycles

    def test_uneven_weight_groups_cover_all_layers(self, config):
        """Groups that don't divide evenly still partition losslessly."""
        # One dominant group (g0: 6 layers) and two singletons — no split
        # of 3 devices gets equal bytes.
        net = Network(
            name="uneven", application="test",
            layers=tuple(
                MatMulLayer(f"t{i}", 64, 64, weight_group="g0")
                for i in range(6)
            ) + (
                MatMulLayer("solo1", 8, 8),
                MatMulLayer("solo2", 8, 8),
            ),
        )
        plan = plan_deployment(net, config, n_devices=3)
        assert 1 <= plan.n_devices <= 3
        deployed = [
            l.name for s in plan.stages for l in s.partition.layers
        ]
        assert deployed == [l.name for l in net.layers]
        # The tied group never splits across stages.
        g0_stages = {
            i for i, s in enumerate(plan.stages)
            for l in s.partition.accelerated_layers()
            if l.weight_group == "g0"
        }
        assert len(g0_stages) == 1

    def test_more_devices_than_weight_groups(self, config):
        plan = plan_deployment(_tied_net(), config, n_devices=10)
        assert 1 <= plan.n_devices <= 2  # only two groups exist

    def test_ewop_only_network_raises_typed_error(self, config):
        net = Network(
            name="ewonly", application="test",
            layers=(EwopLayer("r", op="relu", n_elements=64),),
        )
        with pytest.raises(PartitionError):
            plan_deployment(net, config, n_devices=2)

    def test_too_large_for_residency_raises_typed_error(self, config):
        """A model whose weights can never sit in WBUF raises a
        repro.errors error under require_resident, not a crash."""
        # 512x512 MM = 256 Ki words/layer vs a 16 Ki-word WBUF budget.
        net = Network(
            name="huge", application="test",
            layers=tuple(
                MatMulLayer(f"fc{i}", 512, 512) for i in range(4)
            ),
        )
        with pytest.raises(FTDLError):
            plan_deployment(net, config, n_devices=2,
                            require_resident=True)

    def test_residency_requirement_satisfiable(self, config):
        """require_resident passes when the partitions do fit."""
        import dataclasses
        roomy = dataclasses.replace(config, s_wbuf_words=8192)
        plan = plan_deployment(_net(), roomy, n_devices=2,
                               require_resident=True)
        assert plan.all_resident
