"""Multi-FPGA partitioning and deployment planning."""

import pytest

from repro.analysis.partition import (
    partition_by_weight_groups,
    plan_deployment,
)
from repro.errors import FTDLError
from repro.overlay.config import OverlayConfig
from repro.units import BYTES_PER_WORD
from repro.workloads.layers import ConvLayer, EwopLayer, MatMulLayer
from repro.workloads.network import Network


def _net() -> Network:
    return Network(
        name="n", application="test",
        layers=(
            ConvLayer("c1", 4, 8, in_h=8, in_w=8, kernel_h=3, kernel_w=3,
                      padding=1),
            EwopLayer("r1", op="relu", n_elements=8 * 64),
            ConvLayer("c2", 8, 8, in_h=8, in_w=8, kernel_h=3, kernel_w=3,
                      padding=1),
            EwopLayer("r2", op="relu", n_elements=8 * 64),
            MatMulLayer("fc1", in_features=512, out_features=32),
            MatMulLayer("fc2", in_features=32, out_features=10),
        ),
    )


def _tied_net() -> Network:
    return Network(
        name="tied", application="test",
        layers=tuple(
            MatMulLayer(f"t{i}", 16, 16, weight_group=f"g{i % 2}")
            for i in range(8)
        ),
    )


class TestPartitioning:
    def test_covers_all_layers_once(self):
        net = _net()
        parts = partition_by_weight_groups(net, 3)
        names = [l.name for p in parts for l in p.layers]
        assert names == [l.name for l in net.layers]

    def test_single_device_is_whole_network(self):
        parts = partition_by_weight_groups(_net(), 1)
        assert len(parts) == 1
        assert len(parts[0].layers) == len(_net().layers)

    def test_ewop_follows_producer(self):
        parts = partition_by_weight_groups(_net(), 3)
        for part in parts:
            layer_names = [l.name for l in part.layers]
            if "r1" in layer_names:
                assert "c1" in layer_names
            if "r2" in layer_names:
                assert "c2" in layer_names

    def test_weight_groups_stay_together(self):
        parts = partition_by_weight_groups(_tied_net(), 2)
        for part in parts:
            groups = {l.weight_group for l in part.accelerated_layers()}
            # No group is split across partitions: each partition's groups
            # are disjoint from the others'.
            for other in parts:
                if other is part:
                    continue
                other_groups = {
                    l.weight_group for l in other.accelerated_layers()
                }
                assert not (groups & other_groups)

    def test_more_devices_than_groups(self):
        parts = partition_by_weight_groups(_tied_net(), 10)
        assert 1 <= len(parts) <= 2  # only two groups exist

    def test_balanced_by_unique_bytes(self):
        net = _net()
        parts = partition_by_weight_groups(net, 2)
        sizes = [p.weight_words for p in parts]
        assert max(sizes) < net.weight_words  # both sides got something

    def test_invalid_device_count(self):
        with pytest.raises(FTDLError):
            partition_by_weight_groups(_net(), 0)


class TestDeploymentPlan:
    @pytest.fixture
    def config(self):
        return OverlayConfig(
            d1=4, d2=2, d3=2, s_actbuf_words=128,
            s_wbuf_words=1024, s_psumbuf_words=2048,
        )

    def test_residency_detected(self, config):
        """The demo net's partitions fit the 16-TPE WBUF budget."""
        plan = plan_deployment(_net(), config, n_devices=2)
        budget = config.n_tpe * config.s_wbuf_words * BYTES_PER_WORD
        for stage in plan.stages:
            assert stage.resident == (stage.stored_bytes <= budget)

    def test_pipeline_bottleneck(self, config):
        plan = plan_deployment(_net(), config, n_devices=2)
        assert plan.bottleneck_cycles == max(
            s.result.total_cycles for s in plan.stages
        )
        assert plan.pipeline_fps > 0

    def test_pipeline_beats_or_matches_stage_sum(self, config):
        plan = plan_deployment(_net(), config, n_devices=3)
        serial = sum(s.result.total_cycles for s in plan.stages)
        assert plan.bottleneck_cycles <= serial

    def test_single_device_plan(self, config):
        plan = plan_deployment(_net(), config, n_devices=1)
        assert plan.n_devices == 1
