"""Grouped / depthwise convolution support."""

import numpy as np
import pytest

from repro.compiler.adjacency import adjacency_matrix
from repro.compiler.codegen import compile_schedule
from repro.compiler.search import schedule_layer
from repro.errors import WorkloadError
from repro.overlay.config import OverlayConfig
from repro.sim.cycle import CycleSimulator
from repro.sim.functional import (
    conv2d_int16,
    golden_layer_output,
    random_layer_operands,
)
from repro.workloads.layers import ConvLayer
from repro.workloads.models import build_mobilenet_v1


@pytest.fixture
def depthwise():
    return ConvLayer(
        "dw", in_channels=6, out_channels=6, in_h=8, in_w=8,
        kernel_h=3, kernel_w=3, padding=1, groups=6,
    )


@pytest.fixture
def grouped():
    return ConvLayer(
        "g2", in_channels=4, out_channels=8, in_h=6, in_w=6,
        kernel_h=3, kernel_w=3, padding=1, groups=2,
    )


class TestAccounting:
    def test_depthwise_macc_count(self, depthwise):
        # One input channel per filter: 6 * 8 * 8 * 3 * 3.
        assert depthwise.maccs == 6 * 64 * 9
        assert depthwise.weight_words == 6 * 9

    def test_grouped_counts(self, grouped):
        assert grouped.group_in_channels == 2
        assert grouped.group_out_channels == 4
        assert grouped.maccs == 8 * 2 * 36 * 9
        assert grouped.weight_words == 8 * 2 * 9

    def test_invalid_groups_rejected(self):
        with pytest.raises(WorkloadError, match="groups"):
            ConvLayer("bad", 4, 6, in_h=4, in_w=4, kernel_h=1, kernel_w=1,
                      groups=4)

    def test_m_touches_activations_with_groups(self, grouped):
        tags = {d.name: d.in_acts for d in grouped.loop_dims()}
        assert tags["M"]
        ungrouped = ConvLayer("u", 4, 8, in_h=6, in_w=6, kernel_h=3,
                              kernel_w=3)
        assert not {d.name: d.in_acts for d in ungrouped.loop_dims()}["M"]

    def test_act_footprint_scales_with_groups_touched(self, grouped):
        one_group = grouped.act_footprint({"M": 4, "N": 2, "H": 2, "W": 2,
                                           "R": 3, "S": 3})
        both_groups = grouped.act_footprint({"M": 8, "N": 2, "H": 2, "W": 2,
                                             "R": 3, "S": 3})
        assert both_groups == 2 * one_group

    def test_act_coord_selects_group_channel(self, grouped):
        idx = {"M": 5, "N": 1, "H": 0, "W": 0, "R": 1, "S": 1}
        # m=5 lies in group 1 (out channels 4-7) -> input channel 2 + n.
        assert grouped.act_coord(idx)[0] == 2 + 1


class TestAdjacency:
    def test_grouped_conv_loses_d2(self, grouped, depthwise):
        for layer in (grouped, depthwise):
            assert adjacency_matrix(layer)["D2"]["M"] == 0

    def test_ungrouped_keeps_d2(self):
        layer = ConvLayer("u", 4, 8, in_h=6, in_w=6, kernel_h=3, kernel_w=3)
        assert adjacency_matrix(layer)["D2"]["M"] == 1


class TestGoldenModel:
    def test_depthwise_matches_per_channel(self, depthwise, rng):
        w, a = random_layer_operands(depthwise, rng)
        out = golden_layer_output(depthwise, w, a)
        for c in range(6):
            ref = conv2d_int16(w[c:c + 1], a[c:c + 1], 1, 1)
            assert np.array_equal(out[c:c + 1], ref)

    def test_grouped_shapes(self, grouped, rng):
        w, a = random_layer_operands(grouped, rng)
        assert w.shape == (8, 2, 3, 3)
        assert golden_layer_output(grouped, w, a).shape == (8, 6, 6)


class TestFullStack:
    @pytest.fixture
    def config(self):
        return OverlayConfig(
            d1=3, d2=2, d3=2, s_actbuf_words=64,
            s_wbuf_words=256, s_psumbuf_words=512,
        )

    def test_depthwise_bit_exact(self, depthwise, config, rng):
        schedule = schedule_layer(depthwise, config)
        run = CycleSimulator(config).run_layer(
            compile_schedule(schedule), *random_layer_operands(depthwise, rng)
        )
        assert run.golden_match
        assert run.useful_maccs == depthwise.maccs

    def test_grouped_bit_exact(self, grouped, config, rng):
        schedule = schedule_layer(grouped, config)
        run = CycleSimulator(config).run_layer(
            compile_schedule(schedule), *random_layer_operands(grouped, rng)
        )
        assert run.golden_match

    def test_depthwise_cannot_use_d2(self, depthwise, config):
        schedule = schedule_layer(depthwise, config)
        assert schedule.mapping.level_product("D2") == 1


class TestMobileNet:
    def test_literature_scale(self):
        net = build_mobilenet_v1()
        assert net.weight_words == pytest.approx(4.21e6, rel=0.02)
        assert net.accelerated_maccs == pytest.approx(569e6, rel=0.02)

    def test_block_structure(self):
        net = build_mobilenet_v1()
        dws = [l for l in net.accelerated_layers()
               if getattr(l, "groups", 1) > 1]
        assert len(dws) == 13
        assert all(l.groups == l.in_channels == l.out_channels for l in dws)

    def test_spatial_chain(self):
        net = build_mobilenet_v1()
        convs = [l for l in net.accelerated_layers() if hasattr(l, "out_h")]
        assert convs[0].out_h == 112
        assert convs[-1].out_h == 7
