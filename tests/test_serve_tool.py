"""The repro.tools.serve CLI."""

import pytest

from repro.tools import serve


class TestServeTool:
    def test_replica_run(self, capsys):
        code = serve.main([
            "--model", "SmallCNN", "--grid", "3,2,2", "--rate", "500",
            "--requests", "40", "--replicas", "2", "--slo-ms", "20",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "serving report" in out
        assert "p99" in out
        assert "util overlay1" in out

    def test_pipeline_run(self, capsys):
        code = serve.main([
            "--model", "SmallCNN", "--grid", "3,2,2",
            "--arrival", "uniform", "--rate", "1000", "--requests", "30",
            "--pipeline-devices", "2", "--max-batch", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "pipeline" in out

    def test_deterministic_given_seed(self, capsys):
        argv = [
            "--model", "SmallCNN", "--grid", "3,2,2", "--rate", "800",
            "--requests", "30", "--seed", "9",
        ]
        assert serve.main(argv) == 0
        first = capsys.readouterr().out
        assert serve.main(argv) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_cache_bound_flag(self, capsys):
        code = serve.main([
            "--model", "SmallCNN", "--grid", "3,2,2", "--rate", "500",
            "--requests", "20", "--cache-entries", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "bound 2" in out

    def test_bad_grid_reports_error(self, capsys):
        code = serve.main([
            "--model", "SmallCNN", "--grid", "0,2,2", "--requests", "5",
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_malformed_grid_reports_error(self, capsys):
        for bad in ("12,5", "a,b,c", "1,2,3,4"):
            code = serve.main([
                "--model", "SmallCNN", "--grid", bad, "--requests", "5",
            ])
            assert code == 1
            assert "--grid expects" in capsys.readouterr().err

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            serve.main(["--model", "NotAModel"])
