"""Whole-network pipeline simulation (overlay + host)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.overlay.config import OverlayConfig
from repro.sim.functional import conv2d_int16, matmul_int16, random_layer_operands
from repro.sim.host import HostCpu, choose_shift, requantize
from repro.sim.pipeline import NetworkSimulator
from repro.workloads.layers import ConvLayer, EwopLayer, MatMulLayer, PoolLayer
from repro.workloads.models import build_smallcnn
from repro.workloads.network import Network


@pytest.fixture(scope="module")
def config():
    return OverlayConfig(
        d1=4, d2=2, d3=2,
        s_actbuf_words=128, s_wbuf_words=1024, s_psumbuf_words=2048,
    )


@pytest.fixture(scope="module")
def standard_run(config):
    """One shared end-to-end run of a 16x16 SmallCNN (module-scoped: the
    functional simulation visits every MACC in Python)."""
    rng = np.random.default_rng(2020)
    net = build_smallcnn(in_size=16)
    weights = _weights_for(net, rng)
    image = rng.integers(-100, 101, size=(3, 16, 16)).astype(np.int16)
    run = NetworkSimulator(config).run(net, image, weights)
    return net, weights, image, run


def _weights_for(net, rng, magnitude=40):
    return {
        layer.name: random_layer_operands(layer, rng, magnitude=magnitude)[0]
        for layer in net.accelerated_layers()
    }


class TestPipeline:
    def test_smallcnn_end_to_end(self, standard_run):
        net, _, _, run = standard_run
        assert run.output.shape == (10, 1)
        assert run.overlay_cycles > 0
        assert len(run.stages) == len(net.layers)

    def test_matches_host_side_reference(self, standard_run):
        """The pipeline's output equals an independent NumPy re-execution
        of the same fixed-point chain."""
        net, weights, image, run = standard_run

        # Reference chain: golden conv/matmul + the same requant/host ops.
        host = HostCpu()
        x = image
        for layer in net.layers:
            if isinstance(layer, ConvLayer):
                acc = conv2d_int16(weights[layer.name], x, layer.stride,
                                   layer.padding)
                x = requantize(acc, choose_shift(acc))
            elif isinstance(layer, MatMulLayer):
                acc = matmul_int16(weights[layer.name], x.reshape(-1, 1))
                x = requantize(acc, choose_shift(acc))
            else:
                x = host.execute(layer, x)
        assert np.array_equal(run.output, x)

    def test_ewop_pipelined_not_bound(self, standard_run):
        """The §II-A claim: host EWOP hides under the overlay."""
        _, _, _, run = standard_run
        assert not run.host_bound
        assert run.pipelined_cycles == run.overlay_cycles

    def test_weak_host_becomes_bound(self, config, standard_run):
        """A sufficiently slow host CPU does bind — the model is not
        vacuous."""
        net, weights, image, _ = standard_run
        slow = NetworkSimulator(config, host=HostCpu(ops_per_cycle=0.0001))
        run = slow.run(net, image, weights, check_golden=False)
        assert run.host_bound
        assert run.pipelined_cycles == run.host_cycles

    def test_shape_break_detected(self, config, rng):
        net = Network(
            name="broken", application="test",
            layers=(
                ConvLayer("c1", 3, 4, in_h=8, in_w=8, kernel_h=3,
                          kernel_w=3, padding=1),
                ConvLayer("c2", 8, 4, in_h=8, in_w=8, kernel_h=3,
                          kernel_w=3, padding=1),  # expects 8 channels
            ),
        )
        weights = _weights_for(net, rng)
        image = rng.integers(-50, 51, size=(3, 8, 8)).astype(np.int16)
        with pytest.raises(SimulationError, match="chain carries"):
            NetworkSimulator(config).run(net, image, weights)

    def test_missing_weights_detected(self, config, rng):
        net = build_smallcnn()
        image = rng.integers(-50, 51, size=(3, 32, 32)).astype(np.int16)
        with pytest.raises(SimulationError, match="no weights"):
            NetworkSimulator(config).run(net, image, {})

    def test_stage_accounting_sums(self, standard_run):
        _, _, _, run = standard_run
        assert run.overlay_cycles == sum(s.overlay_cycles for s in run.stages)
        assert run.host_cycles == sum(s.host_cycles for s in run.stages)

    def test_requant_shifts_recorded(self, standard_run):
        _, _, _, run = standard_run
        conv_stages = [s for s in run.stages if s.kind == "conv"]
        # 5x5x8-deep accumulations of +/-100 x +/-40 operands need shifts.
        assert any(s.shift > 0 for s in conv_stages)


class TestDepthwiseSeparablePipeline:
    def test_dw_separable_chain_bit_exact(self, config, rng):
        """A MobileNet-style depthwise-separable block chains through the
        pipeline simulator bit-exactly (grouped conv on the overlay)."""
        from repro.workloads.layers import EwopLayer

        dw = ConvLayer("dw", in_channels=6, out_channels=6, in_h=10,
                       in_w=10, kernel_h=3, kernel_w=3, padding=1, groups=6)
        pw = ConvLayer("pw", in_channels=6, out_channels=8, in_h=10,
                       in_w=10, kernel_h=1, kernel_w=1)
        net = Network(
            name="dwsep", application="test",
            layers=(
                dw,
                EwopLayer("relu_dw", op="relu", n_elements=600),
                pw,
                EwopLayer("relu_pw", op="relu", n_elements=800),
            ),
        )
        weights = _weights_for(net, rng)
        image = rng.integers(-80, 81, size=(6, 10, 10)).astype(np.int16)
        run = NetworkSimulator(config).run(net, image, weights)
        assert run.output.shape == (8, 10, 10)

        # Independent reference.
        host = HostCpu()
        x = image
        for layer in net.layers:
            if isinstance(layer, ConvLayer):
                acc = conv2d_int16(weights[layer.name], x, layer.stride,
                                   layer.padding, layer.groups)
                x = requantize(acc, choose_shift(acc))
            else:
                x = host.execute(layer, x)
        assert np.array_equal(run.output, x)
