"""FPGA power model calibration and scaling behaviour."""

import pytest

from repro.dram.power import DramPowerReport
from repro.errors import FTDLError
from repro.fpga.devices import get_device
from repro.overlay.config import PAPER_EXAMPLE_CONFIG, OverlayConfig
from repro.power.model import estimate_overlay_power


@pytest.fixture
def vu125():
    return get_device("vu125")


class TestCalibration:
    def test_paper_operating_point(self, vu125):
        """1200 TPEs at 650 MHz, ~81 % utilization: the paper reports
        45.8 W — the model must land in that neighbourhood."""
        report = estimate_overlay_power(PAPER_EXAMPLE_CONFIG, vu125, 0.811)
        assert 35.0 < report.total_w < 55.0

    def test_gops_per_watt_near_paper(self, vu125):
        report = estimate_overlay_power(PAPER_EXAMPLE_CONFIG, vu125, 0.811)
        attained = 1560.0 * 0.811
        assert report.gops_per_watt(attained) == pytest.approx(27.6, rel=0.25)

    def test_breakdown_sums(self, vu125):
        report = estimate_overlay_power(PAPER_EXAMPLE_CONFIG, vu125, 0.8)
        assert report.total_w == pytest.approx(
            report.dsp_w + report.bram_w + report.clb_w
            + report.clock_w + report.static_w + report.dram_w
        )


class TestScaling:
    def test_power_scales_with_utilization(self, vu125):
        low = estimate_overlay_power(PAPER_EXAMPLE_CONFIG, vu125, 0.2)
        high = estimate_overlay_power(PAPER_EXAMPLE_CONFIG, vu125, 0.9)
        assert high.total_w > low.total_w
        assert high.dsp_w == pytest.approx(low.dsp_w * 4.5)

    def test_power_scales_with_size(self, vu125):
        small = OverlayConfig(d1=12, d2=1, d3=20)
        big = PAPER_EXAMPLE_CONFIG
        p_small = estimate_overlay_power(small, vu125, 0.8)
        p_big = estimate_overlay_power(big, vu125, 0.8)
        assert p_big.dsp_w == pytest.approx(5 * p_small.dsp_w)
        assert p_big.total_w > p_small.total_w

    def test_power_scales_with_frequency(self, vu125):
        slow = OverlayConfig(d1=12, d2=5, d3=20, clk_h_mhz=325.0)
        fast = PAPER_EXAMPLE_CONFIG
        p_slow = estimate_overlay_power(slow, vu125, 0.8)
        p_fast = estimate_overlay_power(fast, vu125, 0.8)
        assert p_fast.dsp_w == pytest.approx(2 * p_slow.dsp_w)

    def test_dram_report_added(self, vu125):
        dram = DramPowerReport(
            read_energy_nj=1e6, write_energy_nj=0.0,
            background_energy_nj=0.0, window_seconds=1e-3,
        )
        with_dram = estimate_overlay_power(PAPER_EXAMPLE_CONFIG, vu125, 0.8, dram)
        without = estimate_overlay_power(PAPER_EXAMPLE_CONFIG, vu125, 0.8)
        assert with_dram.total_w == pytest.approx(without.total_w + 1.0)

    def test_bad_utilization_rejected(self, vu125):
        with pytest.raises(FTDLError):
            estimate_overlay_power(PAPER_EXAMPLE_CONFIG, vu125, 1.5)

    def test_zero_power_guard(self, vu125):
        report = estimate_overlay_power(PAPER_EXAMPLE_CONFIG, vu125, 0.0)
        assert report.gops_per_watt(0.0) == 0.0
