"""Full-stack conformance: every registered workload, every stage.

The headline harness of the workload registry: each registered network —
the paper's five Table I models plus the transformer suite — runs
through schedule search, cycle simulation against the functional golden
kernels (vectorized and reference engines bit-identical), one served
batch, a fault-masked recompile, ABFT detect/correct, host-kernel
determinism, and (where declared) mixed-precision evaluation.  One
report per workload; the tests then assert each stage's invariant
individually so a failure names the stage, not just the workload.
"""

from __future__ import annotations

import functools
from pathlib import Path

import pytest

from repro.conformance import (
    CONFORMANCE_CONFIG,
    DEFAULT_BUDGET,
    conformance_summary,
    run_workload_conformance,
)
from repro.tools.conformance import BUDGET_WORKLOADS, main
from repro.workloads import WORKLOADS, registered_workloads

ALL_NAMES = [spec.name for spec in registered_workloads()]

GOLDEN = Path(__file__).parent / "golden" / "conformance_smoke.txt"

#: The exact invocation the golden file was generated with (also run by
#: the CI conformance-smoke job).
GOLDEN_ARGS = ["--budget"]


@functools.lru_cache(maxsize=None)
def _report(name: str):
    """One conformance run per workload, shared across all tests."""
    return run_workload_conformance(WORKLOADS[name])


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEveryWorkload:
    def test_conformant(self, name):
        report = _report(name)
        assert report.ok, report.errors

    def test_every_accelerated_layer_scheduled(self, name):
        report = _report(name)
        if report.n_accelerated:
            assert report.model_cycles > 0
        assert report.distinct_signatures <= report.n_accelerated

    def test_simulation_bit_identical_and_conserved(self, name):
        report = _report(name)
        assert report.sim_checks, "no layer was simulated"
        for check in report.sim_checks:
            assert check.golden_match, check.name
            assert check.conserved, check.name
            assert check.engines_identical, check.name
            assert check.cycles_agree, (
                check.name, check.model_cycles, check.measured_cycles,
            )
        small = [
            c for c in report.sim_checks
            if c.maccs <= DEFAULT_BUDGET.max_reference_maccs
        ]
        if small:
            assert any(c.reference_checked for c in small)

    def test_serves_one_batch(self, name):
        report = _report(name)
        assert report.serve_batch == DEFAULT_BUDGET.batch_size
        assert report.serve_s > 0.0

    def test_recompiles_on_degraded_grid(self, name):
        report = _report(name)
        d1, d2, d3 = report.degraded_grid
        full = CONFORMANCE_CONFIG
        assert 0 < d1 * d2 * d3 < full.d1 * full.d2 * full.d3
        assert report.degraded_cycles > 0

    def test_abft_detects_and_corrects(self, name):
        report = _report(name)
        assert report.abft_layer, "no ABFT-suitable GEMM found"
        assert report.abft_psum_corrected
        assert report.abft_weight_detected

    def test_host_layers_deterministic(self, name):
        report = _report(name)
        network = WORKLOADS[name].builder()
        non_ewop = [
            layer for layer in network.host_layers()
            if layer.kind.value != "ewop"
        ]
        expected = min(len(non_ewop), DEFAULT_BUDGET.max_host_layers)
        assert report.host_checked == expected

    def test_sequential_workloads_chain_end_to_end(self, name):
        report = _report(name)
        spec = WORKLOADS[name]
        assert report.chained == spec.sequential
        if spec.sequential:
            assert report.chain_cycles > 0

    def test_mixed_precision_when_declared(self, name):
        report = _report(name)
        spec = WORKLOADS[name]
        if spec.precision is None:
            assert report.precision_model_bytes == 0
        else:
            assert 0 < report.precision_model_bytes < report.precision_int16_bytes
            assert report.precision_compression > 1.0
            assert report.precision_min_sqnr_db >= 20.0


class TestRegistryCoverage:
    def test_both_suites_present(self):
        suites = {spec.suite for spec in registered_workloads()}
        assert suites == {"paper", "transformer"}

    def test_paper_suite_is_the_table1_five(self):
        names = {s.name for s in registered_workloads("paper")}
        assert names == {
            "GoogLeNet", "ResNet50", "AlphaGoZero",
            "Sentimental-seqCNN", "Sentimental-seqLSTM",
        }

    def test_transformer_suite_members(self):
        names = {s.name for s in registered_workloads("transformer")}
        assert names == {
            "Transformer-base", "Transformer-MLP", "TinyAttention",
            "Transformer-mixed",
        }

    def test_summary_has_one_row_per_workload(self):
        reports = [_report(name) for name in ALL_NAMES]
        lines = conformance_summary(reports).splitlines()
        rows = [l for l in lines if not l.startswith(("  !", "workload"))]
        assert len(rows) == len(ALL_NAMES)

    def test_same_seed_same_report(self):
        spec = WORKLOADS["TinyAttention"]
        first = run_workload_conformance(spec, seed=3)
        second = run_workload_conformance(spec, seed=3)
        assert conformance_summary([first]) == conformance_summary([second])


class TestGolden:
    def test_matches_checked_in_golden(self, capsys):
        assert main(GOLDEN_ARGS) == 0
        assert capsys.readouterr().out == GOLDEN.read_text()

    def test_budget_mode_covers_the_small_transformers(self):
        assert set(BUDGET_WORKLOADS) <= set(WORKLOADS)
        for name in BUDGET_WORKLOADS:
            assert WORKLOADS[name].suite == "transformer"


class TestCliSurface:
    def test_suite_filter(self, capsys):
        assert main(["--workloads", "TinyAttention", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "TinyAttention" in out
        assert "GoogLeNet" not in out
        assert "1/1 workloads conformant" in out

    def test_unknown_workload_is_error(self, capsys):
        assert main(["--workloads", "NotANetwork"]) == 1
        assert "NotANetwork" in capsys.readouterr().err

    def test_empty_suite_is_error(self, capsys):
        assert main(["--suite", "banana"]) == 1
        assert "banana" in capsys.readouterr().err

    def test_bad_grid_is_error(self, capsys):
        assert main(["--grid", "banana"]) == 1
        assert "error" in capsys.readouterr().err

    def test_beam_overrides_parse(self, capsys):
        args = ["--workloads", "TinyAttention",
                "--spatial-beam", "8", "--temporal-beam", "12"]
        assert main(args) == 0
        assert "beams 8/12" in capsys.readouterr().out
