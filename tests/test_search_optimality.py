"""Search optimality: the beamed scheduler vs exhaustive enumeration.

For micro layers the structured space is small enough to enumerate
completely with an *independent* brute-force walker; the scheduler's
winner must match the brute-force optimum (or beat it, if the walker's
coarser grid misses a tile).  This guards the beam heuristics against
silently discarding the optimal region.
"""

from __future__ import annotations

import itertools
from math import prod

import pytest

from repro.compiler.adjacency import adjacency_matrix
from repro.compiler.constraints import check_constraints
from repro.compiler.mapping import MappingVectors
from repro.compiler.model import evaluate_mapping
from repro.compiler.search import ScheduleSearch
from repro.overlay.config import OverlayConfig
from repro.units import ceil_div
from repro.workloads.layers import ConvLayer, MatMulLayer


def brute_force_best_cycles(layer, config) -> int:
    """Exhaustively enumerate every mapping on the full divisor grid of
    each loop, independent of the scheduler's candidate generation."""
    names = tuple(layer.loop_sizes)
    sizes = layer.loop_sizes
    matrix = adjacency_matrix(layer)

    def all_tiles(size):
        return [t for t in range(1, size + 1)]

    per_loop_options = []
    for name in names:
        size = sizes[name]
        options = []
        levels = [lvl for lvl in ("D1", "D2", "D3", "X", "L", "T")
                  if matrix[lvl][name]]
        # Every assignment of tile sizes to allowed levels covering size.
        for combo in itertools.product(
            *(all_tiles(size) for _ in levels)
        ):
            if prod(combo) < size:
                continue
            # Skip grossly padded combos the optimum never needs.
            if prod(combo) > 2 * size:
                continue
            assignment = {lvl: 1 for lvl in ("D1", "D2", "D3", "X", "L", "T")}
            assignment.update(dict(zip(levels, combo)))
            options.append(assignment)
        per_loop_options.append(options)

    best = None
    for choice in itertools.product(*per_loop_options):
        partial = {
            lvl: {name: choice[i][lvl] for i, name in enumerate(names)}
            for lvl in ("D1", "D2", "D3", "X", "L", "T")
        }
        mapping = MappingVectors.from_partial(names, partial)
        if check_constraints(layer, config, mapping):
            continue
        cycles = evaluate_mapping(layer, config, mapping).c_exe
        if best is None or cycles < best:
            best = cycles
    assert best is not None, "brute force found no feasible mapping"
    return best


@pytest.mark.parametrize(
    "layer",
    [
        MatMulLayer("mm44", in_features=4, out_features=4, batch=2),
        MatMulLayer("mm63", in_features=6, out_features=3, batch=1),
        ConvLayer("c1x1", 3, 4, in_h=3, in_w=3, kernel_h=1, kernel_w=1),
    ],
    ids=lambda l: l.name,
)
def test_search_matches_brute_force(layer):
    config = OverlayConfig(
        d1=2, d2=2, d3=2, s_actbuf_words=32,
        s_wbuf_words=64, s_psumbuf_words=64,
    )
    searched = ScheduleSearch(
        layer, config, spatial_beam=None, temporal_beam=None
    ).run()[0]
    brute = brute_force_best_cycles(layer, config)
    assert searched.cycles <= brute


def test_forced_x_is_never_suboptimal():
    """The scheduler derives LoopX as the minimal cover; check against a
    brute force that also enumerates padded X choices."""
    layer = MatMulLayer("mm", in_features=5, out_features=3, batch=2)
    config = OverlayConfig(
        d1=2, d2=2, d3=1, s_actbuf_words=16,
        s_wbuf_words=32, s_psumbuf_words=32,
    )
    searched = ScheduleSearch(
        layer, config, spatial_beam=None, temporal_beam=None
    ).run()[0]
    brute = brute_force_best_cycles(layer, config)
    assert searched.cycles <= brute


TRANSFORMER_MICRO_MMS = [
    # Attention score: run-time weights streamed from the K projection —
    # streaming must not change the nest the oracle enumerates.
    MatMulLayer("score", in_features=6, out_features=4, batch=4,
                weight_source="k"),
    # Attention mix: softmax scores as the weight operand.
    MatMulLayer("mix", in_features=4, out_features=4, batch=4),
    # Skinny classification head (out_features << in_features).
    MatMulLayer("head", in_features=8, out_features=2, batch=3),
]

_MICRO_CONFIG = OverlayConfig(
    d1=2, d2=2, d3=2, s_actbuf_words=32,
    s_wbuf_words=64, s_psumbuf_words=64,
)


@pytest.mark.parametrize("layer", TRANSFORMER_MICRO_MMS, ids=lambda l: l.name)
def test_transformer_mm_nests_match_brute_force(layer):
    searched = ScheduleSearch(
        layer, _MICRO_CONFIG, spatial_beam=None, temporal_beam=None
    ).run()[0]
    assert searched.cycles <= brute_force_best_cycles(layer, _MICRO_CONFIG)


@pytest.mark.parametrize("layer", TRANSFORMER_MICRO_MMS, ids=lambda l: l.name)
def test_conformance_budget_beams_stay_optimal_on_micro_mms(layer):
    """The conformance harness searches with narrow beams (16/24); on
    transformer-scale micro matmuls that must not cost any cycles."""
    full = ScheduleSearch(
        layer, _MICRO_CONFIG, spatial_beam=None, temporal_beam=None
    ).run()[0]
    budget = ScheduleSearch(
        layer, _MICRO_CONFIG, spatial_beam=16, temporal_beam=24
    ).run()[0]
    assert budget.cycles == full.cycles


def test_host_nests_are_not_schedulable():
    """Eltwise/softmax/norm run on the host: the scheduler has no
    adjacency matrix for them and must refuse, not mis-map."""
    from repro.errors import MappingError
    from repro.workloads.layers import (
        EltwiseLayer, LayerNormLayer, SoftmaxLayer,
    )
    for layer in (
        EltwiseLayer("e", op="add", n_features=4, batch=2),
        SoftmaxLayer("s", n_features=4, batch=2),
        LayerNormLayer("n", n_features=4, batch=2),
    ):
        with pytest.raises(MappingError):
            ScheduleSearch(layer, _MICRO_CONFIG).run()
