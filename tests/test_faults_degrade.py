"""Fault-aware compilation and replica health accounting."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    FaultMask,
    HealthMonitor,
    degraded_compile,
)
from repro.workloads.layers import MatMulLayer
from repro.workloads.network import Network


@pytest.fixture
def net():
    return Network(
        name="mmnet", application="test",
        layers=(
            MatMulLayer("fc1", in_features=48, out_features=24),
            MatMulLayer("fc2", in_features=24, out_features=8),
        ),
    )


class TestDegradedCompile:
    def test_empty_mask_is_identity(self, net, tiny_config):
        report = degraded_compile(net, tiny_config, FaultMask())
        assert report.degraded == tiny_config
        assert report.slowdown == 1.0
        assert report.throughput_factor == 1.0
        assert report.efficiency_delta == 0.0

    def test_masked_grid_slows_down(self, net, tiny_config):
        report = degraded_compile(
            net, tiny_config, FaultMask.from_coords([(0, 0, 0)])
        )
        assert report.degraded.n_tpe == 8
        assert report.n_masked == 1
        assert report.degraded_cycles >= report.healthy_cycles
        assert report.slowdown >= 1.0
        assert 0.0 < report.throughput_factor <= 1.0

    def test_graceful_not_cliff(self, net, small_config):
        """Losing 1/48 tiles must not cost more than the lost sub-grid
        share: throughput retention >= TPE retention."""
        report = degraded_compile(
            net, small_config, FaultMask.from_coords([(0, 0, 0)])
        )
        assert report.tpe_fraction_kept >= 0.75
        assert report.throughput_factor >= report.tpe_fraction_kept * 0.9

    def test_report_identities(self, net, tiny_config):
        report = degraded_compile(
            net, tiny_config, FaultMask.from_coords([(0, 0, 0), (1, 1, 2)])
        )
        assert report.masked_fraction == pytest.approx(2 / 12)
        assert report.slowdown * report.throughput_factor == \
            pytest.approx(1.0)
        assert report.healthy_efficiency == pytest.approx(
            report.total_maccs
            / (report.healthy_cycles * tiny_config.n_tpe)
        )

    def test_describe_mentions_grids(self, net, tiny_config):
        report = degraded_compile(
            net, tiny_config, FaultMask.from_coords([(0, 0, 0)])
        )
        text = report.describe()
        assert "3x2x2" in text
        assert "mmnet" in text

    def test_deterministic(self, net, tiny_config):
        mask = FaultMask.from_coords([(0, 1, 1)])
        a = degraded_compile(net, tiny_config, mask)
        b = degraded_compile(net, tiny_config, mask)
        assert a == b


class TestHealthMonitor:
    def test_mttr_over_completed_intervals(self):
        mon = HealthMonitor(["a", "b"])
        mon.record_crash("a", 1.0)
        mon.record_recovery("a", 1.5)
        mon.record_crash("b", 2.0)
        mon.record_recovery("b", 2.1)
        report = mon.finalize(end_s=3.0)
        assert report.mttr_s == pytest.approx(0.3)  # mean(0.5, 0.1)
        assert report.downtime_s == pytest.approx(0.6)
        assert report.crashes == 2
        assert report.recoveries == 2

    def test_unrecovered_crash_counts_to_end(self):
        mon = HealthMonitor(["a"])
        mon.record_crash("a", 1.0)
        report = mon.finalize(end_s=4.0)
        assert report.mttr_s == 0.0  # no completed interval
        assert report.downtime_s == pytest.approx(3.0)
        assert report.per_replica_downtime_s["a"] == pytest.approx(3.0)

    def test_uptime_fraction(self):
        mon = HealthMonitor(["a", "b"])
        mon.record_crash("a", 0.0)
        mon.record_recovery("a", 1.0)
        report = mon.finalize(end_s=2.0)
        # 1 of 4 replica-seconds down.
        assert report.uptime_fraction == pytest.approx(0.75)

    def test_double_crash_idempotent(self):
        mon = HealthMonitor(["a"])
        mon.record_crash("a", 1.0)
        mon.record_crash("a", 1.2)  # already down: ignored
        assert mon.crashes == 1
        mon.record_recovery("a", 2.0)
        assert mon.finalize(3.0).mttr_s == pytest.approx(1.0)

    def test_is_down_tracks_state(self):
        mon = HealthMonitor(["a"])
        assert not mon.is_down("a")
        mon.record_crash("a", 0.5)
        assert mon.is_down("a")
        mon.record_recovery("a", 1.0)
        assert not mon.is_down("a")

    def test_unknown_replica_rejected(self):
        mon = HealthMonitor(["a"])
        with pytest.raises(FaultError):
            mon.record_crash("nope", 0.0)

    def test_empty_replicas_rejected(self):
        with pytest.raises(FaultError):
            HealthMonitor([])

    def test_start_anchors_span(self):
        mon = HealthMonitor(["a"])
        report = mon.finalize(end_s=5.0, start_s=2.0)
        assert report.span_s == pytest.approx(3.0)
        assert report.uptime_fraction == 1.0
