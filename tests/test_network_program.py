"""Whole-network lowering: WBUF allocation across co-resident layers."""

import pytest

from repro.compiler.codegen import compile_network
from repro.compiler.residency import plan_residency
from repro.errors import ScheduleError
from repro.overlay.config import OverlayConfig
from repro.overlay.isa import OpKind
from repro.workloads.layers import ConvLayer, MatMulLayer
from repro.workloads.network import Network


@pytest.fixture
def config():
    return OverlayConfig(
        d1=4, d2=2, d3=2, s_actbuf_words=128,
        s_wbuf_words=256, s_psumbuf_words=2048,
    )


def _net() -> Network:
    return Network(
        name="n", application="test",
        layers=(
            ConvLayer("c1", 4, 8, in_h=8, in_w=8, kernel_h=3, kernel_w=3,
                      padding=1),
            ConvLayer("c2", 8, 8, in_h=8, in_w=8, kernel_h=3, kernel_w=3,
                      padding=1),
            MatMulLayer("fc", in_features=512, out_features=16),
        ),
    )


class TestCompileNetwork:
    def test_resident_layers_have_no_load(self, config):
        plan = plan_residency(_net(), config)
        program = compile_network(plan)
        by_name = {
            c.schedule.layer.name: c for c in program.layers
        }
        for entry in plan.layers:
            compiled = by_name[entry.name]
            ops = [inst.op for inst in compiled.row_programs[0]]
            if entry.name in program.wbuf_bases:
                assert OpKind.LOAD_WEIGHT not in ops
            else:
                assert ops[0] == OpKind.LOAD_WEIGHT

    def test_allocations_disjoint_and_within_capacity(self, config):
        plan = plan_residency(_net(), config)
        program = compile_network(plan)
        spans = []
        for entry in plan.layers:
            if entry.name not in program.wbuf_bases:
                continue
            base = program.wbuf_bases[entry.name]
            words = entry.schedule.estimate.wbuf_words
            spans.append((base, base + words))
            assert base + words <= config.s_wbuf_words
        spans.sort()
        for (a_lo, a_hi), (b_lo, b_hi) in zip(spans, spans[1:]):
            assert a_hi <= b_lo  # no overlap

    def test_scratch_above_resident(self, config):
        plan = plan_residency(_net(), config)
        program = compile_network(plan)
        tops = [
            program.wbuf_bases[e.name] + e.schedule.estimate.wbuf_words
            for e in plan.layers if e.name in program.wbuf_bases
        ]
        assert program.scratch_base == (max(tops) if tops else 0)

    def test_compute_instructions_carry_bases(self, config):
        plan = plan_residency(_net(), config)
        program = compile_network(plan)
        for compiled in program.layers:
            name = compiled.schedule.layer.name
            compute = compiled.row_programs[0][-1]
            if name in program.wbuf_bases:
                assert compute.wbuf_base == program.wbuf_bases[name]

    def test_tied_layers_share_base(self, config):
        tied = Network(
            name="tied", application="test",
            layers=tuple(
                MatMulLayer(f"t{i}", 16, 16, weight_group="g")
                for i in range(3)
            ),
        )
        plan = plan_residency(tied, config)
        program = compile_network(plan)
        if program.wbuf_bases:
            bases = {program.wbuf_bases[f"t{i}"] for i in range(3)}
            assert len(bases) == 1

    def test_per_tpe_spill_demotes_to_streaming(self):
        """The plan packs aggregate words; the per-TPE packing can be
        tighter.  Layers that no longer fit must spill gracefully."""
        config = OverlayConfig(
            d1=1, d2=1, d3=1, s_actbuf_words=64,
            s_wbuf_words=128, s_psumbuf_words=512,
        )
        net = Network(
            name="tight", application="test",
            layers=(
                MatMulLayer("a", 8, 8),    # 64 words on one TPE
                MatMulLayer("b", 8, 8),    # 64 more: exactly fills
                MatMulLayer("c", 10, 8),   # spills
            ),
        )
        plan = plan_residency(net, config)
        program = compile_network(plan)
        resident_words = sum(
            e.schedule.estimate.wbuf_words
            for e in plan.layers if e.name in program.wbuf_bases
        )
        assert resident_words <= config.s_wbuf_words
        # Every layer still compiled (spilled ones stream).
        assert len(program.layers) == 3
        assert program.n_instructions >= 3

    def test_oversized_pass_slice_rejected(self, config):
        """A hand-built plan whose layer cannot fit any WBUF must raise."""
        import dataclasses

        plan = plan_residency(_net(), config)
        bad_estimate = dataclasses.replace(
            plan.layers[0].schedule.estimate,
            wbuf_words=config.s_wbuf_words + 1,
        )
        bad_schedule = dataclasses.replace(
            plan.layers[0].schedule, estimate=bad_estimate
        )
        bad_entry = dataclasses.replace(
            plan.layers[0], schedule=bad_schedule, resident=False
        )
        bad_plan = dataclasses.replace(
            plan, layers=(bad_entry,) + plan.layers[1:]
        )
        with pytest.raises(ScheduleError, match="exceeds"):
            compile_network(bad_plan)
