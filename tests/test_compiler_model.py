"""Analytical model: Eqns 7-9, 12-13 plus the streaming/stall refinements."""

import pytest

from repro.compiler.mapping import MappingVectors
from repro.compiler.model import evaluate_mapping
from repro.overlay.config import OverlayConfig
from repro.workloads.layers import ConvLayer, MatMulLayer


@pytest.fixture
def config():
    return OverlayConfig(
        d1=4, d2=2, d3=2,
        s_actbuf_words=128, s_wbuf_words=1024, s_psumbuf_words=2048,
        clk_h_mhz=650.0,
    )


def _conv_mapping(layer: ConvLayer) -> MappingVectors:
    return MappingVectors.from_partial(
        ("M", "N", "H", "W", "R", "S"),
        {
            "D1": {"N": 4},
            "D2": {"M": 2},
            "D3": {"H": 2},
            "X": {"M": 2},
            "L": {"R": 3, "S": 3},
            "T": {"N": 2, "H": 4, "W": 8},
        },
    )


@pytest.fixture
def conv_layer():
    return ConvLayer("c", 8, 4, in_h=8, in_w=8, kernel_h=3, kernel_w=3, padding=1)


class TestComputeTime:
    def test_eqn7(self, config, conv_layer):
        mapping = _conv_mapping(conv_layer)
        est = evaluate_mapping(conv_layer, config, mapping)
        x, l, t = mapping.x, mapping.l, mapping.t
        assert est.c_comp == x * (l * t + config.pipeline_latency)
        assert not est.weight_stalled

    def test_pipeline_latency_is_d1_plus_6(self, config):
        assert config.pipeline_latency == 10

    def test_weight_stall_batch1_mm(self, config):
        """A batch-1 MM cannot reuse weights over two CLK_h cycles."""
        layer = MatMulLayer("fc", in_features=16, out_features=8, batch=1)
        mapping = MappingVectors.from_partial(
            ("M", "N", "P"),
            {"D1": {"M": 4}, "D2": {"N": 2}, "T": {"M": 4, "N": 4}},
        )
        est = evaluate_mapping(layer, config, mapping)
        assert est.weight_stalled
        assert est.c_comp == 1 * (16 * 2 + config.pipeline_latency)

    def test_batch2_mm_not_stalled(self, config):
        layer = MatMulLayer("fc", in_features=16, out_features=8, batch=2)
        mapping = MappingVectors.from_partial(
            ("M", "N", "P"),
            {"D1": {"M": 4}, "D2": {"N": 2}, "T": {"M": 4, "N": 4, "P": 2}},
        )
        est = evaluate_mapping(layer, config, mapping)
        assert not est.weight_stalled


class TestBusAndDram:
    def test_actbus_charges_row_tile(self, config, conv_layer):
        mapping = _conv_mapping(conv_layer)
        est = evaluate_mapping(conv_layer, config, mapping)
        f_act = conv_layer.act_footprint(mapping.tile(("T", "D1")))
        expected = -(-mapping.x * mapping.l * f_act // config.actbus_wpc)
        assert est.c_actbus == int(expected)

    def test_psumbus_eqn9(self, config, conv_layer):
        mapping = _conv_mapping(conv_layer)
        est = evaluate_mapping(conv_layer, config, mapping)
        f_psum = conv_layer.out_footprint(mapping.tile(("T", "L")))
        used_d3 = mapping.level_product("D3")
        expected = -(-mapping.x * used_d3 * f_psum
                     // config.psumbus_words_per_cycle)
        assert est.c_psumbus == int(expected)

    def test_multipass_doubles_psum_traffic(self, config):
        """A reduction loop at X forces fetch + store per pass."""
        layer = ConvLayer("c", 8, 4, in_h=4, in_w=4, kernel_h=1, kernel_w=1)
        base = MappingVectors.from_partial(
            ("M", "N", "H", "W", "R", "S"),
            {"T": {"H": 4, "W": 4}, "X": {"M": 4}, "L": {"N": 8}},
        )
        multi = MappingVectors.from_partial(
            ("M", "N", "H", "W", "R", "S"),
            {"T": {"H": 4, "W": 4}, "X": {"M": 4, "N": 8}},
        )
        est_base = evaluate_mapping(layer, config, base)
        est_multi = evaluate_mapping(layer, config, multi)
        # Base (reduction fully inside LoopL): one store per pass.
        f_psum = 16
        assert est_base.c_psumbus == int(
            -(-base.x * f_psum // config.psumbus_words_per_cycle)
        )
        # Multipass (reduction split at X): fetch + store per pass.
        assert est_multi.c_psumbus == int(
            -(-multi.x * f_psum * 2 // config.psumbus_words_per_cycle)
        )

    def test_weight_streaming_in_dram_read(self, config, conv_layer):
        """Stored weights (including duplication) cross DRAM once."""
        mapping = _conv_mapping(conv_layer)
        est = evaluate_mapping(conv_layer, config, mapping)
        stored = mapping.used_tpes() * conv_layer.weight_footprint(
            mapping.tile(("X", "L", "T"))
        )
        act = mapping.x * mapping.l * conv_layer.act_footprint(
            mapping.tile(("T", "D1", "D3"))
        )
        expected = -(-(stored + act) // config.dram_rd_words_per_cycle())
        assert est.c_dram_rd == int(expected)


class TestEwbufAndObjectives:
    def test_e_wbuf_perfect_when_spatial_maps_weights(self, config):
        layer = ConvLayer("c", 8, 8, in_h=4, in_w=4, kernel_h=1, kernel_w=1)
        mapping = MappingVectors.from_partial(
            ("M", "N", "H", "W", "R", "S"),
            {"D1": {"N": 4}, "D2": {"M": 2}, "X": {"M": 4, "N": 2},
             "T": {"H": 4, "W": 4}},
        )
        est = evaluate_mapping(layer, config, mapping)
        assert est.e_wbuf == pytest.approx(1.0)

    def test_e_wbuf_duplication_from_spatial_output_split(self, config):
        """Splitting H across D3 duplicates the weights across rows."""
        layer = ConvLayer("c", 8, 8, in_h=4, in_w=4, kernel_h=1, kernel_w=1)
        mapping = MappingVectors.from_partial(
            ("M", "N", "H", "W", "R", "S"),
            {"D1": {"N": 4}, "D2": {"M": 2}, "D3": {"H": 2},
             "X": {"M": 4, "N": 2}, "T": {"H": 2, "W": 4}},
        )
        est = evaluate_mapping(layer, config, mapping)
        assert est.e_wbuf == pytest.approx(0.5)

    def test_ewop_flag_for_d3_reduction(self, config):
        layer = ConvLayer("c", 8, 8, in_h=4, in_w=4, kernel_h=1, kernel_w=1)
        mapping = MappingVectors.from_partial(
            ("M", "N", "H", "W", "R", "S"),
            {"D3": {"N": 2}, "X": {"M": 8, "N": 4}, "T": {"H": 4, "W": 4}},
        )
        est = evaluate_mapping(layer, config, mapping)
        assert est.ewop_accumulate

    def test_c_exe_is_max_with_double_buffer(self, config, conv_layer):
        est = evaluate_mapping(conv_layer, config, _conv_mapping(conv_layer))
        assert est.c_exe == max(
            est.c_comp, est.c_actbus, est.c_psumbus, est.c_dram_rd, est.c_dram_wr
        )

    def test_c_exe_is_sum_without_double_buffer(self, conv_layer):
        config = OverlayConfig(
            d1=4, d2=2, d3=2, s_actbuf_words=128, s_wbuf_words=1024,
            s_psumbuf_words=2048, double_buffer=False,
        )
        est = evaluate_mapping(conv_layer, config, _conv_mapping(conv_layer))
        assert est.c_exe == (
            est.c_comp + est.c_actbus + est.c_psumbus
            + est.c_dram_rd + est.c_dram_wr
        )

    def test_efficiency_bounded_by_one(self, config, conv_layer):
        est = evaluate_mapping(conv_layer, config, _conv_mapping(conv_layer))
        assert 0.0 < est.hardware_efficiency <= 1.0

    def test_score_components(self, config, conv_layer):
        est = evaluate_mapping(conv_layer, config, _conv_mapping(conv_layer))
        assert est.score == pytest.approx(est.c_exe_min / est.c_exe + est.e_wbuf)
        assert 0.0 < est.score <= 2.0

    def test_bottleneck_names_the_max(self, config, conv_layer):
        est = evaluate_mapping(conv_layer, config, _conv_mapping(conv_layer))
        named = {
            "compute": est.c_comp, "actbus": est.c_actbus,
            "psumbus": est.c_psumbus, "dram_rd": est.c_dram_rd,
            "dram_wr": est.c_dram_wr,
        }
        assert named[est.bottleneck] == max(named.values())

    def test_gops_at_clock(self, config, conv_layer):
        est = evaluate_mapping(conv_layer, config, _conv_mapping(conv_layer))
        gops = est.gops_at(650.0)
        assert gops == pytest.approx(
            2 * est.useful_maccs * 650e6 / est.c_exe / 1e9
        )
