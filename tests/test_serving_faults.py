"""Fault-tolerant serving: failover, retries, deadlines, degraded mode."""

import math

import pytest

from repro.compiler.cache import CacheStats
from repro.errors import FaultError
from repro.faults import (
    DramBitFlip,
    FaultSchedule,
    LinkFault,
    ReplicaCrash,
    ReplicaRecovery,
    ReplicaSlowdown,
    TPEFault,
    generate_fault_schedule,
)
from repro.serving.admission import AdmissionPolicy
from repro.serving.batcher import BatchPolicy, BatchServiceModel
from repro.serving.engine import (
    DROP_DEADLINE,
    DROP_NO_REPLICA,
    DROP_RETRY_EXHAUSTED,
    ServingEngine,
)
from repro.serving.request import RetryPolicy, make_requests, uniform_arrivals
from repro.serving.scheduler import ReplicaService
from repro.workloads.layers import MatMulLayer
from repro.workloads.network import Network


class StubService:
    """Fixed service time per batch, N replicas, TPE-degradable."""

    def __init__(self, n_replicas: int = 1, service_s: float = 1e-3):
        self.n_replicas = n_replicas
        self._service_s = service_s

    def latency_s(self, batch_size: int) -> float:
        return self._service_s

    def occupancy_s(self, batch_size: int) -> float:
        return self._service_s

    def cache_stats(self) -> CacheStats:
        return CacheStats(hits=0, misses=0, evictions=0, size=0,
                          max_entries=None)

    def replica_names(self) -> list[str]:
        return [f"stub{i}" for i in range(self.n_replicas)]

    def degrade_slowdown(self, masked, batch_size: int) -> float:
        return 1.0 + 0.5 * len(masked)


def _engine(service, faults=None, retry=None, **kwargs):
    kwargs.setdefault("batch_policy", BatchPolicy(max_batch=1,
                                                  max_wait_s=0.0))
    return ServingEngine(
        service,
        fault_schedule=faults,
        retry_policy=retry or RetryPolicy(),
        **kwargs,
    )


class TestCrashFailover:
    def _run(self, deadline_s=None):
        faults = FaultSchedule.from_events([
            ReplicaCrash(0.0505, "stub0"),
            ReplicaRecovery(0.150, "stub0"),
        ])
        requests = make_requests(
            uniform_arrivals(500.0, 100), "stub", deadline_s=deadline_s
        )
        engine = _engine(StubService(n_replicas=2), faults)
        return engine.run(requests)

    def test_failover_keeps_availability(self):
        report = self._run()
        assert report.availability >= 0.99
        assert report.n_completed + report.n_dropped == 100
        assert report.fault_counts == {"crash": 1, "recovery": 1}

    def test_aborted_batch_is_retried(self):
        report = self._run()
        assert report.n_retries >= 1
        retried = [r for r in report.completed if r.attempts > 1]
        assert retried
        # The retried work completed on the surviving replica.
        assert all(r.replica == "stub1" for r in retried)

    def test_retries_respect_deadlines(self):
        report = self._run(deadline_s=0.050)
        assert report.availability >= 0.99
        for req in report.completed:
            assert req.dispatch_s < req.arrival_s + 0.050
        for req in report.dropped:
            assert req.drop_reason in (DROP_DEADLINE, DROP_RETRY_EXHAUSTED)

    def test_health_report_attached(self):
        report = self._run()
        assert report.health is not None
        assert report.health.crashes == 1
        assert report.health.recoveries == 1
        assert report.health.mttr_s == pytest.approx(0.150 - 0.0505)
        assert 0.0 < report.health.uptime_fraction < 1.0

    def test_describe_shows_reliability(self):
        text = self._run().describe()
        assert "availability" in text
        assert "crash=1" in text
        assert "MTTR" in text


class TestAllReplicasDown:
    def test_stranded_work_dropped(self):
        faults = FaultSchedule.from_events([ReplicaCrash(0.0005, "stub0")])
        requests = make_requests([0.0, 0.001, 0.002], "stub")
        report = _engine(StubService(), faults).run(requests)
        assert report.n_completed == 0
        assert report.n_dropped == 3
        assert set(report.drop_reasons) <= {DROP_NO_REPLICA,
                                            DROP_RETRY_EXHAUSTED,
                                            DROP_DEADLINE}
        assert report.availability == 0.0

    def test_offered_conservation(self):
        faults = FaultSchedule.from_events([ReplicaCrash(0.0005, "stub0")])
        requests = make_requests(uniform_arrivals(1000.0, 10), "stub")
        report = _engine(StubService(), faults,
                         admission_policy=AdmissionPolicy(capacity=4)) \
            .run(requests)
        assert report.n_completed + report.n_dropped \
            + report.n_rejected == 10


class TestTransientFaults:
    @pytest.mark.parametrize("event", [
        LinkFault(0.0005, "stub0"),
        DramBitFlip(0.0005, "stub0", correctable=False),
        TPEFault(0.0005, "stub0", 0, 0, 0, stuck=False),
    ])
    def test_inflight_batch_retried(self, event):
        faults = FaultSchedule.from_events([event])
        report = _engine(StubService(), faults).run(
            make_requests([0.0], "stub")
        )
        (req,) = report.completed
        assert req.attempts == 2
        assert report.n_retries == 1
        # Retry lands after the capped-exponential backoff.
        assert req.complete_s > 2e-3

    def test_correctable_bitflip_absorbed(self):
        faults = FaultSchedule.from_events([
            DramBitFlip(0.0005, "stub0", correctable=True)
        ])
        report = _engine(StubService(), faults).run(
            make_requests([0.0], "stub")
        )
        (req,) = report.completed
        assert req.attempts == 1
        assert report.n_retries == 0
        assert report.fault_counts == {"dram_ecc": 1}

    def test_retry_budget_exhausts(self):
        faults = FaultSchedule.from_events([LinkFault(0.0005, "stub0")])
        report = _engine(
            StubService(), faults, retry=RetryPolicy(max_attempts=1)
        ).run(make_requests([0.0], "stub"))
        assert report.n_completed == 0
        assert report.drop_reasons == {DROP_RETRY_EXHAUSTED: 1}


class TestSlowdownAndDegrade:
    def test_slowdown_inflates_service(self):
        faults = FaultSchedule.from_events([
            ReplicaSlowdown(0.0, "stub0", factor=3.0)
        ])
        report = _engine(StubService(), faults).run(
            make_requests([0.001], "stub")
        )
        (req,) = report.completed
        assert req.latency_s == pytest.approx(3e-3)

    def test_recovery_clears_slowdown(self):
        faults = FaultSchedule.from_events([
            ReplicaSlowdown(0.0, "stub0", factor=3.0),
            ReplicaRecovery(0.010, "stub0"),
        ])
        report = _engine(StubService(), faults).run(
            make_requests([0.001, 0.020], "stub")
        )
        first, second = sorted(report.completed,
                               key=lambda r: r.arrival_s)
        assert first.latency_s == pytest.approx(3e-3)
        assert second.latency_s == pytest.approx(1e-3)

    def test_stuck_tpe_degrades_subsequent_batches(self):
        faults = FaultSchedule.from_events([
            TPEFault(0.010, "stub0", 0, 0, 0, stuck=True)
        ])
        report = _engine(StubService(), faults).run(
            make_requests([0.001, 0.020], "stub")
        )
        first, second = sorted(report.completed,
                               key=lambda r: r.arrival_s)
        assert first.latency_s == pytest.approx(1e-3)
        # StubService.degrade_slowdown: 1 masked tile -> 1.5x.
        assert second.latency_s == pytest.approx(1.5e-3)
        assert report.fault_counts == {"tpe_stuck": 1}

    def test_fault_pressure_forces_degraded_dispatch(self):
        faults = FaultSchedule.from_events([
            ReplicaCrash(0.0, "stub1"),
        ])
        engine = _engine(
            StubService(n_replicas=2), faults,
            batch_policy=BatchPolicy(max_batch=16, max_wait_s=10.0),
            admission_policy=AdmissionPolicy(capacity=64),
        )
        report = engine.run(make_requests(
            uniform_arrivals(1000.0, 20), "stub"
        ))
        # Without fault pressure a 16-batch would wait out the 10 s
        # formation window; with it the queue drains immediately.
        assert report.degraded_dispatches > 0
        assert report.n_completed == 20
        assert max(r.complete_s for r in report.completed) < 1.0


class TestDeadlines:
    def test_expired_queue_entries_dropped(self):
        # One replica busy for 1 s; later arrivals with 5 ms deadlines
        # expire in the queue.
        requests = make_requests([0.0, 0.001, 0.002], "stub",
                                 deadline_s=0.005)
        report = _engine(StubService(service_s=1.0)).run(requests)
        assert report.n_completed == 1
        assert report.drop_reasons == {DROP_DEADLINE: 2}
        assert report.drop_rate == pytest.approx(2 / 3)
        for req in report.dropped:
            assert req.complete_s is None
            assert req.drop_reason == DROP_DEADLINE

    def test_slo_violations_count_drops(self):
        requests = make_requests([0.0, 0.001], "stub", deadline_s=0.005)
        report = _engine(StubService(service_s=1.0)).run(requests)
        assert report.slo_violations >= report.n_dropped

    def test_no_deadline_means_no_expiry(self):
        requests = make_requests([0.0, 0.001], "stub")
        report = _engine(StubService(service_s=0.01)).run(requests)
        assert report.n_dropped == 0
        assert all(math.isinf(r.deadline_at_s) for r in report.completed)


class TestFaultRunDeterminism:
    def _report(self, tiny_config):
        net = Network(
            name="mmnet", application="test",
            layers=(MatMulLayer("fc", in_features=32, out_features=16),),
        )
        service = ReplicaService(BatchServiceModel(net, tiny_config), 2)
        faults = generate_fault_schedule(
            seed=13, duration_s=0.05, replicas=service.replica_names(),
            grid=tiny_config, crash_rate_hz=40.0, mean_repair_s=0.005,
            tpe_fault_rate_hz=20.0, bitflip_rate_hz=50.0,
            link_fault_rate_hz=10.0, slowdown_rate_hz=10.0,
        )
        engine = ServingEngine(
            service,
            batch_policy=BatchPolicy(max_batch=4, max_wait_s=1e-3),
            fault_schedule=faults,
            retry_policy=RetryPolicy(),
        )
        requests = make_requests(
            uniform_arrivals(2000.0, 80), "mmnet", deadline_s=0.050
        )
        return engine.run(requests)

    def test_bit_identical_reports(self, tiny_config):
        a = self._report(tiny_config)
        b = self._report(tiny_config)
        assert a.describe() == b.describe()
        assert a.latencies_s == b.latencies_s
        assert a.fault_counts == b.fault_counts
        assert a.drop_reasons == b.drop_reasons

    def test_conservation_and_bounds(self, tiny_config):
        report = self._report(tiny_config)
        assert report.n_completed + report.n_dropped \
            + report.n_rejected == 80
        assert 0.0 <= report.availability <= 1.0
        assert 0.0 <= report.drop_rate <= 1.0
        if report.health is not None:
            assert 0.0 <= report.health.uptime_fraction <= 1.0


class TestNoFaultBackCompat:
    def test_faultless_run_has_no_fault_sections(self):
        report = _engine(StubService()).run(make_requests([0.0], "stub"))
        assert report.health is None
        assert report.fault_counts == {}
        assert report.n_retries == 0
        assert "availability" not in report.describe()

    def test_unknown_fault_replica_raises(self):
        faults = FaultSchedule.from_events([ReplicaCrash(0.0, "ghost")])
        with pytest.raises(FaultError):
            _engine(StubService(), faults).run(make_requests([0.0], "s"))
