"""Fault events, schedules, and the structured fault errors."""

import math

import pytest

from repro.errors import FaultError, FTDLError, RetryExhaustedError, ServingError
from repro.faults import (
    DramBitFlip,
    FaultSchedule,
    LinkFault,
    ReplicaCrash,
    ReplicaRecovery,
    ReplicaSlowdown,
    TPEFault,
    generate_fault_schedule,
)
from repro.overlay.config import OverlayConfig


class TestFaultErrors:
    def test_fault_error_hierarchy(self):
        assert issubclass(FaultError, FTDLError)
        assert issubclass(RetryExhaustedError, FaultError)

    def test_fault_error_context_appended(self):
        err = FaultError("tile died", replica="overlay1", at_s=0.125)
        assert err.replica == "overlay1"
        assert err.at_s == 0.125
        assert "overlay1" in str(err)
        assert "0.125" in str(err)

    def test_fault_error_context_optional(self):
        err = FaultError("generic")
        assert err.replica is None
        assert err.at_s is None
        assert str(err) == "generic"

    def test_retry_exhausted_carries_request(self):
        err = RetryExhaustedError(
            "gave up", request_id=42, attempts=3, replica="overlay0"
        )
        assert err.request_id == 42
        assert err.attempts == 3
        assert isinstance(err, FaultError)

    def test_fault_error_distinct_from_serving_error(self):
        # The serving engine distinguishes fault-path failures from
        # plain configuration errors.
        assert not issubclass(FaultError, ServingError)


class TestFaultEvents:
    def test_kinds(self):
        assert TPEFault(0.0, "r", 0, 0, 0, stuck=True).kind == "tpe_stuck"
        assert TPEFault(0.0, "r", 0, 0, 0, stuck=False).kind == "tpe_transient"
        assert DramBitFlip(0.0, "r", correctable=True).kind == "dram_ecc"
        assert DramBitFlip(0.0, "r", correctable=False).kind == \
            "dram_uncorrectable"
        assert LinkFault(0.0, "r").kind == "link"
        assert ReplicaCrash(0.0, "r").kind == "crash"
        assert ReplicaSlowdown(0.0, "r").kind == "slowdown"
        assert ReplicaRecovery(0.0, "r").kind == "recovery"

    def test_tpe_coord(self):
        fault = TPEFault(1.0, "r", sb_row=3, sb_col=1, chain_pos=2)
        assert fault.coord == (3, 1, 2)

    @pytest.mark.parametrize("at_s", [-1.0, math.nan, math.inf])
    def test_invalid_timestamp(self, at_s):
        with pytest.raises(FaultError):
            ReplicaCrash(at_s, "r")

    def test_empty_replica_rejected(self):
        with pytest.raises(FaultError):
            ReplicaCrash(0.0, "")

    def test_negative_coordinate_rejected(self):
        with pytest.raises(FaultError):
            TPEFault(0.0, "r", sb_row=-1, sb_col=0, chain_pos=0)

    @pytest.mark.parametrize("factor", [0.5, 0.0, math.nan])
    def test_slowdown_factor_validated(self, factor):
        with pytest.raises(FaultError):
            ReplicaSlowdown(0.0, "r", factor=factor)

    def test_events_frozen(self):
        crash = ReplicaCrash(0.0, "r")
        with pytest.raises(Exception):
            crash.at_s = 1.0  # type: ignore[misc]


class TestFaultSchedule:
    def test_from_events_sorts(self):
        sched = FaultSchedule.from_events([
            ReplicaRecovery(2.0, "a"),
            ReplicaCrash(1.0, "a"),
            LinkFault(1.5, "b"),
        ])
        assert [e.at_s for e in sched.events] == [1.0, 1.5, 2.0]

    def test_unsorted_constructor_rejected(self):
        with pytest.raises(FaultError):
            FaultSchedule(events=(
                ReplicaCrash(2.0, "a"), ReplicaCrash(1.0, "a"),
            ))

    def test_for_replica_filters(self):
        sched = FaultSchedule.from_events([
            ReplicaCrash(1.0, "a"),
            ReplicaCrash(2.0, "b"),
            ReplicaRecovery(3.0, "a"),
        ])
        sub = sched.for_replica("a")
        assert len(sub) == 2
        assert all(e.replica == "a" for e in sub.events)

    def test_counts_and_describe(self):
        sched = FaultSchedule.from_events([
            ReplicaCrash(1.0, "a"),
            ReplicaCrash(2.0, "b"),
            LinkFault(3.0, "a"),
        ])
        assert sched.counts() == {"crash": 2, "link": 1}
        assert "crash=2" in sched.describe()

    def test_empty_schedule_ok(self):
        sched = FaultSchedule(events=())
        assert len(sched) == 0
        assert "none" in sched.describe()


class TestGenerateFaultSchedule:
    KW = dict(duration_s=1.0, replicas=["r0", "r1"],
              crash_rate_hz=5.0, slowdown_rate_hz=2.0,
              bitflip_rate_hz=10.0, link_fault_rate_hz=1.0)

    def test_identical_seed_bit_identical(self):
        a = generate_fault_schedule(seed=3, **self.KW)
        b = generate_fault_schedule(seed=3, **self.KW)
        assert a == b

    def test_seed_changes_schedule(self):
        a = generate_fault_schedule(seed=3, **self.KW)
        b = generate_fault_schedule(seed=4, **self.KW)
        assert a != b

    def test_crashes_paired_with_recoveries(self):
        sched = generate_fault_schedule(
            seed=0, duration_s=2.0, replicas=["r0"], crash_rate_hz=10.0
        )
        counts = sched.counts()
        assert counts.get("crash", 0) > 0
        assert counts["recovery"] == counts["crash"]

    def test_tpe_faults_respect_grid(self):
        config = OverlayConfig(d1=3, d2=2, d3=2)
        sched = generate_fault_schedule(
            seed=1, duration_s=2.0, replicas=["r0"], grid=config,
            tpe_fault_rate_hz=20.0,
        )
        tpe = [e for e in sched.events if isinstance(e, TPEFault)]
        assert tpe
        for fault in tpe:
            row, col, pos = fault.coord
            assert 0 <= row < config.d3
            assert 0 <= col < config.d2
            assert 0 <= pos < config.d1

    def test_tpe_rate_without_grid_rejected(self):
        with pytest.raises(FaultError):
            generate_fault_schedule(
                seed=0, duration_s=1.0, replicas=["r"],
                tpe_fault_rate_hz=1.0,
            )

    def test_zero_rates_yield_empty_schedule(self):
        sched = generate_fault_schedule(
            seed=0, duration_s=1.0, replicas=["r"]
        )
        assert len(sched) == 0

    @pytest.mark.parametrize("kwargs", [
        dict(duration_s=0.0, replicas=["r"]),
        dict(duration_s=math.nan, replicas=["r"]),
        dict(duration_s=1.0, replicas=[]),
        dict(duration_s=1.0, replicas=["r", "r"]),
        dict(duration_s=1.0, replicas=["r"], crash_rate_hz=-1.0),
        dict(duration_s=1.0, replicas=["r"], crash_rate_hz=math.nan),
        dict(duration_s=1.0, replicas=["r"], stuck_fraction=1.5),
        dict(duration_s=1.0, replicas=["r"], correctable_fraction=-0.1),
    ])
    def test_invalid_args(self, kwargs):
        with pytest.raises(FaultError):
            generate_fault_schedule(seed=0, **kwargs)

    def test_grid_accepts_plain_tuple(self):
        sched = generate_fault_schedule(
            seed=5, duration_s=1.0, replicas=["r"], grid=(3, 2, 2),
            tpe_fault_rate_hz=10.0,
        )
        assert any(isinstance(e, TPEFault) for e in sched.events)
