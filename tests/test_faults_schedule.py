"""Fault events, schedules, and the structured fault errors."""

import math

import pytest

from repro.errors import FaultError, FTDLError, RetryExhaustedError, ServingError
from repro.faults import (
    DramBitFlip,
    FaultSchedule,
    LinkFault,
    ReplicaCrash,
    ReplicaRecovery,
    ReplicaSlowdown,
    TPEFault,
    generate_fault_schedule,
)
from repro.overlay.config import OverlayConfig


class TestFaultErrors:
    def test_fault_error_hierarchy(self):
        assert issubclass(FaultError, FTDLError)
        assert issubclass(RetryExhaustedError, FaultError)

    def test_fault_error_context_appended(self):
        err = FaultError("tile died", replica="overlay1", at_s=0.125)
        assert err.replica == "overlay1"
        assert err.at_s == 0.125
        assert "overlay1" in str(err)
        assert "0.125" in str(err)

    def test_fault_error_context_optional(self):
        err = FaultError("generic")
        assert err.replica is None
        assert err.at_s is None
        assert str(err) == "generic"

    def test_retry_exhausted_carries_request(self):
        err = RetryExhaustedError(
            "gave up", request_id=42, attempts=3, replica="overlay0"
        )
        assert err.request_id == 42
        assert err.attempts == 3
        assert isinstance(err, FaultError)

    def test_fault_error_distinct_from_serving_error(self):
        # The serving engine distinguishes fault-path failures from
        # plain configuration errors.
        assert not issubclass(FaultError, ServingError)


class TestFaultEvents:
    def test_kinds(self):
        assert TPEFault(0.0, "r", 0, 0, 0, stuck=True).kind == "tpe_stuck"
        assert TPEFault(0.0, "r", 0, 0, 0, stuck=False).kind == "tpe_transient"
        assert DramBitFlip(0.0, "r", correctable=True).kind == "dram_ecc"
        assert DramBitFlip(0.0, "r", correctable=False).kind == \
            "dram_uncorrectable"
        assert LinkFault(0.0, "r").kind == "link"
        assert ReplicaCrash(0.0, "r").kind == "crash"
        assert ReplicaSlowdown(0.0, "r").kind == "slowdown"
        assert ReplicaRecovery(0.0, "r").kind == "recovery"

    def test_tpe_coord(self):
        fault = TPEFault(1.0, "r", sb_row=3, sb_col=1, chain_pos=2)
        assert fault.coord == (3, 1, 2)

    @pytest.mark.parametrize("at_s", [-1.0, math.nan, math.inf])
    def test_invalid_timestamp(self, at_s):
        with pytest.raises(FaultError):
            ReplicaCrash(at_s, "r")

    def test_empty_replica_rejected(self):
        with pytest.raises(FaultError):
            ReplicaCrash(0.0, "")

    def test_negative_coordinate_rejected(self):
        with pytest.raises(FaultError):
            TPEFault(0.0, "r", sb_row=-1, sb_col=0, chain_pos=0)

    @pytest.mark.parametrize("factor", [0.5, 0.0, math.nan])
    def test_slowdown_factor_validated(self, factor):
        with pytest.raises(FaultError):
            ReplicaSlowdown(0.0, "r", factor=factor)

    def test_events_frozen(self):
        crash = ReplicaCrash(0.0, "r")
        with pytest.raises(Exception):
            crash.at_s = 1.0  # type: ignore[misc]


class TestFaultSchedule:
    def test_from_events_sorts(self):
        sched = FaultSchedule.from_events([
            ReplicaRecovery(2.0, "a"),
            ReplicaCrash(1.0, "a"),
            LinkFault(1.5, "b"),
        ])
        assert [e.at_s for e in sched.events] == [1.0, 1.5, 2.0]

    def test_unsorted_constructor_rejected(self):
        with pytest.raises(FaultError):
            FaultSchedule(events=(
                ReplicaCrash(2.0, "a"), ReplicaCrash(1.0, "a"),
            ))

    def test_for_replica_filters(self):
        sched = FaultSchedule.from_events([
            ReplicaCrash(1.0, "a"),
            ReplicaCrash(2.0, "b"),
            ReplicaRecovery(3.0, "a"),
        ])
        sub = sched.for_replica("a")
        assert len(sub) == 2
        assert all(e.replica == "a" for e in sub.events)

    def test_counts_and_describe(self):
        sched = FaultSchedule.from_events([
            ReplicaCrash(1.0, "a"),
            ReplicaCrash(2.0, "b"),
            LinkFault(3.0, "a"),
        ])
        assert sched.counts() == {"crash": 2, "link": 1}
        assert "crash=2" in sched.describe()

    def test_empty_schedule_ok(self):
        sched = FaultSchedule(events=())
        assert len(sched) == 0
        assert "none" in sched.describe()


class TestGenerateFaultSchedule:
    KW = dict(duration_s=1.0, replicas=["r0", "r1"],
              crash_rate_hz=5.0, slowdown_rate_hz=2.0,
              bitflip_rate_hz=10.0, link_fault_rate_hz=1.0)

    def test_identical_seed_bit_identical(self):
        a = generate_fault_schedule(seed=3, **self.KW)
        b = generate_fault_schedule(seed=3, **self.KW)
        assert a == b

    def test_seed_changes_schedule(self):
        a = generate_fault_schedule(seed=3, **self.KW)
        b = generate_fault_schedule(seed=4, **self.KW)
        assert a != b

    def test_crashes_paired_with_recoveries(self):
        sched = generate_fault_schedule(
            seed=0, duration_s=2.0, replicas=["r0"], crash_rate_hz=10.0
        )
        counts = sched.counts()
        assert counts.get("crash", 0) > 0
        assert counts["recovery"] == counts["crash"]

    def test_tpe_faults_respect_grid(self):
        config = OverlayConfig(d1=3, d2=2, d3=2)
        sched = generate_fault_schedule(
            seed=1, duration_s=2.0, replicas=["r0"], grid=config,
            tpe_fault_rate_hz=20.0,
        )
        tpe = [e for e in sched.events if isinstance(e, TPEFault)]
        assert tpe
        for fault in tpe:
            row, col, pos = fault.coord
            assert 0 <= row < config.d3
            assert 0 <= col < config.d2
            assert 0 <= pos < config.d1

    def test_tpe_rate_without_grid_rejected(self):
        with pytest.raises(FaultError):
            generate_fault_schedule(
                seed=0, duration_s=1.0, replicas=["r"],
                tpe_fault_rate_hz=1.0,
            )

    def test_zero_rates_yield_empty_schedule(self):
        sched = generate_fault_schedule(
            seed=0, duration_s=1.0, replicas=["r"]
        )
        assert len(sched) == 0

    @pytest.mark.parametrize("kwargs", [
        dict(duration_s=0.0, replicas=["r"]),
        dict(duration_s=math.nan, replicas=["r"]),
        dict(duration_s=1.0, replicas=[]),
        dict(duration_s=1.0, replicas=["r", "r"]),
        dict(duration_s=1.0, replicas=["r"], crash_rate_hz=-1.0),
        dict(duration_s=1.0, replicas=["r"], crash_rate_hz=math.nan),
        dict(duration_s=1.0, replicas=["r"], stuck_fraction=1.5),
        dict(duration_s=1.0, replicas=["r"], correctable_fraction=-0.1),
    ])
    def test_invalid_args(self, kwargs):
        with pytest.raises(FaultError):
            generate_fault_schedule(seed=0, **kwargs)

    def test_grid_accepts_plain_tuple(self):
        sched = generate_fault_schedule(
            seed=5, duration_s=1.0, replicas=["r"], grid=(3, 2, 2),
            tpe_fault_rate_hz=10.0,
        )
        assert any(isinstance(e, TPEFault) for e in sched.events)


class TestScheduleValidation:
    """Satellite of the integrity PR: schedules are checked against the
    overlay they will strike, so injection campaigns fail fast on
    impossible coordinates instead of silently missing."""

    GRID = OverlayConfig(d1=3, d2=2, d3=2)

    def test_out_of_grid_tpe_coord_rejected(self):
        bad = TPEFault(0.5, "r0", sb_row=2, sb_col=0, chain_pos=0,
                       stuck=False)
        with pytest.raises(FaultError) as err:
            FaultSchedule.from_events([bad], grid=self.GRID)
        assert err.value.replica == "r0"
        assert err.value.at_s == 0.5
        assert "2x2" in str(err.value)

    @pytest.mark.parametrize("coord", [(0, 2, 0), (0, 0, 3), (1, 5, 9)])
    def test_each_axis_is_checked(self, coord):
        row, col, pos = coord
        bad = TPEFault(0.1, "r0", sb_row=row, sb_col=col, chain_pos=pos)
        with pytest.raises(FaultError):
            FaultSchedule.from_events([bad], grid=(3, 2, 2))

    def test_in_grid_coords_pass_and_chain(self):
        ok = TPEFault(0.1, "r0", sb_row=1, sb_col=1, chain_pos=2)
        sched = FaultSchedule.from_events([ok], grid=self.GRID)
        assert sched.validate_against(grid=(3, 2, 2)) is sched

    def test_word_addr_beyond_operand_space_rejected(self):
        bad = DramBitFlip(0.2, "r0", correctable=False, word_addr=64)
        with pytest.raises(FaultError) as err:
            FaultSchedule.from_events([bad], dram_words=64)
        assert "64-word operand space" in str(err.value)
        assert err.value.at_s == 0.2

    def test_unpinned_word_addr_passes(self):
        sched = FaultSchedule.from_events(
            [DramBitFlip(0.2, "r0", correctable=False)], dram_words=4
        )
        assert len(sched) == 1

    def test_nonpositive_dram_words_rejected(self):
        with pytest.raises(FaultError):
            FaultSchedule.from_events([], dram_words=0)

    def test_negative_word_addr_rejected_at_event(self):
        with pytest.raises(FaultError):
            DramBitFlip(0.1, "r0", correctable=False, word_addr=-1)

    def test_generated_word_addrs_stay_in_range(self):
        sched = generate_fault_schedule(
            seed=3, duration_s=2.0, replicas=["r0", "r1"],
            bitflip_rate_hz=40.0, correctable_fraction=0.5,
            dram_words=17,
        )
        flips = [e for e in sched.events if isinstance(e, DramBitFlip)]
        assert flips
        assert all(f.word_addr is not None and 0 <= f.word_addr < 17
                   for f in flips)

    def test_unset_dram_words_preserves_legacy_stream(self):
        # Backwards compatibility: without dram_words the generator must
        # not consume extra RNG draws, so seeded schedules from before
        # the integrity PR replay bit for bit (word_addr stays None).
        a = generate_fault_schedule(
            seed=9, duration_s=1.0, replicas=["r"], bitflip_rate_hz=30.0,
        )
        b = generate_fault_schedule(
            seed=9, duration_s=1.0, replicas=["r"], bitflip_rate_hz=30.0,
        )
        assert a.events == b.events
        assert all(e.word_addr is None for e in a.events
                   if isinstance(e, DramBitFlip))

    def test_generator_validates_its_own_output(self):
        # The generator wires grid/dram_words straight into
        # validate_against, so its own draws can never be out of range.
        sched = generate_fault_schedule(
            seed=1, duration_s=1.0, replicas=["r"], grid=self.GRID,
            tpe_fault_rate_hz=20.0, bitflip_rate_hz=20.0, dram_words=8,
        )
        assert sched.validate_against(grid=self.GRID, dram_words=8) is sched


class TestMerge:
    """Satellite of the cluster PR: deterministic schedule composition."""

    def test_empty_merge(self):
        assert FaultSchedule.merge() == FaultSchedule(events=())
        empty = FaultSchedule(events=())
        assert FaultSchedule.merge(empty, empty).events == ()

    def test_orders_by_time_replica_kind(self):
        a = FaultSchedule.from_events([
            ReplicaCrash(1.0, "b"), LinkFault(3.0, "a"),
        ])
        b = FaultSchedule.from_events([
            ReplicaCrash(1.0, "a"), ReplicaRecovery(2.0, "b"),
        ])
        merged = FaultSchedule.merge(a, b)
        assert [(e.at_s, e.replica, e.kind) for e in merged.events] == [
            (1.0, "a", "crash"), (1.0, "b", "crash"),
            (2.0, "b", "recovery"), (3.0, "a", "link"),
        ]

    def test_stable_for_identical_keys(self):
        # Same (at_s, replica, kind): argument order is the tiebreak.
        first = ReplicaSlowdown(1.0, "r", factor=2.0)
        second = ReplicaSlowdown(1.0, "r", factor=8.0)
        merged = FaultSchedule.merge(
            FaultSchedule.from_events([first]),
            FaultSchedule.from_events([second]),
        )
        assert merged.events[0].factor == 2.0
        assert merged.events[1].factor == 8.0

    def test_preserves_generated_streams_byte_for_byte(self):
        a = generate_fault_schedule(
            seed=1, duration_s=1.0, replicas=["a0", "a1"],
            crash_rate_hz=6.0, bitflip_rate_hz=10.0,
        )
        b = generate_fault_schedule(
            seed=2, duration_s=1.0, replicas=["b0"],
            crash_rate_hz=6.0, slowdown_rate_hz=4.0,
        )
        merged = FaultSchedule.merge(a, b)
        assert len(merged) == len(a) + len(b)
        assert [e for e in merged.events if e.replica.startswith("a")] \
            == list(a.events)
        assert [e for e in merged.events if e.replica.startswith("b")] \
            == list(b.events)

    def test_merge_is_deterministic_and_associative_for_distinct_keys(self):
        a = generate_fault_schedule(
            seed=3, duration_s=1.0, replicas=["a"], crash_rate_hz=9.0)
        b = generate_fault_schedule(
            seed=4, duration_s=1.0, replicas=["b"], crash_rate_hz=9.0)
        c = generate_fault_schedule(
            seed=5, duration_s=1.0, replicas=["c"], link_fault_rate_hz=9.0)
        left = FaultSchedule.merge(FaultSchedule.merge(a, b), c)
        right = FaultSchedule.merge(a, FaultSchedule.merge(b, c))
        assert left == right
        assert FaultSchedule.merge(a, b, c) == left

    def test_merged_schedule_is_valid_input(self):
        merged = FaultSchedule.merge(
            FaultSchedule.from_events([ReplicaCrash(1.0, "r")]),
            FaultSchedule.from_events([ReplicaRecovery(2.0, "r")]),
        )
        # from_events-style invariants hold on the result.
        assert merged.for_replica("r").counts() == {
            "crash": 1, "recovery": 1,
        }
