"""Property-based invariants of the analytical model."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compiler.constraints import check_constraints
from repro.compiler.search import ScheduleSearch
from repro.overlay.config import OverlayConfig
from repro.workloads.layers import ConvLayer, MatMulLayer

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

layer_strategy = st.one_of(
    st.builds(
        ConvLayer,
        name=st.just("inv_conv"),
        in_channels=st.integers(1, 8),
        out_channels=st.integers(1, 10),
        in_h=st.integers(4, 10),
        in_w=st.integers(4, 10),
        kernel_h=st.sampled_from([1, 3]),
        kernel_w=st.sampled_from([1, 3]),
        stride=st.integers(1, 2),
        padding=st.integers(0, 1),
    ),
    st.builds(
        MatMulLayer,
        name=st.just("inv_mm"),
        in_features=st.integers(1, 48),
        out_features=st.integers(1, 32),
        batch=st.integers(1, 6),
    ),
)


def _search(layer, config):
    return ScheduleSearch(
        layer, config, spatial_beam=20, temporal_beam=20
    ).run()[0]


@_SETTINGS
@given(layer=layer_strategy)
def test_estimate_invariants(layer):
    """For any searched schedule: efficiency in (0, 1], C_exe >= C_min,
    score in (0, 2], padded coverage, buffers within capacity."""
    config = OverlayConfig(
        d1=3, d2=2, d3=2, s_actbuf_words=64,
        s_wbuf_words=256, s_psumbuf_words=512,
    )
    schedule = _search(layer, config)
    est = schedule.estimate
    assert 0.0 < est.hardware_efficiency <= 1.0
    assert est.c_exe >= est.c_exe_min
    assert 0.0 < est.score <= 2.0
    assert 0.0 < est.e_wbuf <= 1.0
    assert est.actbuf_words <= config.actbuf_usable_words
    assert est.wbuf_words <= config.s_wbuf_words
    assert est.psumbuf_words <= config.psumbuf_usable_words
    assert check_constraints(layer, config, schedule.mapping) == []


@_SETTINGS
@given(layer=layer_strategy)
def test_more_hardware_never_slower(layer):
    """At fixed D1, growing the grid (more columns/rows) cannot make the
    best schedule slower: every smaller-grid mapping stays feasible.

    D1 must be held fixed because the cascade fill latency Lat = D1 + 6
    genuinely grows with chain depth — a deeper SuperBlock *can* lose on
    tiny layers.
    """
    small = OverlayConfig(
        d1=2, d2=1, d3=2, s_actbuf_words=64,
        s_wbuf_words=256, s_psumbuf_words=512,
    )
    large = OverlayConfig(
        d1=2, d2=2, d3=4, s_actbuf_words=64,
        s_wbuf_words=256, s_psumbuf_words=512,
    )
    slow = ScheduleSearch(layer, small, spatial_beam=None,
                          temporal_beam=40).run()[0]
    fast = ScheduleSearch(layer, large, spatial_beam=None,
                          temporal_beam=40).run()[0]
    assert fast.cycles <= slow.cycles


@_SETTINGS
@given(layer=layer_strategy)
def test_double_buffer_never_slower(layer):
    """Overlapping communication with computation cannot lose."""
    base = dict(
        d1=3, d2=2, d3=2, s_actbuf_words=64,
        s_wbuf_words=256, s_psumbuf_words=512,
    )
    overlapped = _search(layer, OverlayConfig(**base))
    serial = _search(layer, OverlayConfig(**base, double_buffer=False))
    assert overlapped.cycles <= serial.cycles


@_SETTINGS
@given(layer=layer_strategy)
def test_residency_never_slower(layer):
    """Removing the weight stream cannot make the best schedule slower."""
    base = dict(
        d1=3, d2=2, d3=2, s_actbuf_words=64,
        s_wbuf_words=256, s_psumbuf_words=512,
    )
    streamed = _search(layer, OverlayConfig(**base))
    resident = _search(layer, OverlayConfig(**base, weights_resident=True))
    assert resident.cycles <= streamed.cycles
