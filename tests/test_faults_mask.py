"""Fault masks and the largest-healthy-sub-grid derivation."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    FaultMask,
    TPEFault,
    largest_healthy_subgrid,
    random_tpe_mask,
)
from repro.overlay.config import PAPER_EXAMPLE_CONFIG, OverlayConfig


class TestFaultMask:
    def test_from_coords_dedupes(self):
        mask = FaultMask.from_coords([(0, 0, 0), (0, 0, 0), (1, 0, 0)])
        assert len(mask) == 2

    def test_from_faults_keeps_only_stuck(self):
        faults = [
            TPEFault(0.0, "r", 0, 0, 0, stuck=True),
            TPEFault(0.0, "r", 0, 0, 1, stuck=False),
        ]
        mask = FaultMask.from_faults(faults)
        assert mask.masked == {(0, 0, 0)}

    def test_add_is_persistent(self):
        mask = FaultMask()
        grown = mask.add((1, 1, 1))
        assert not mask
        assert grown.masked == {(1, 1, 1)}

    def test_fraction(self, tiny_config):
        mask = FaultMask.from_coords([(0, 0, 0)])
        assert mask.fraction(tiny_config) == pytest.approx(1 / 12)

    def test_validate_rejects_out_of_range(self, tiny_config):
        # tiny_config is 3x2x2: chain_pos must be < 3, sb_row < 2.
        with pytest.raises(FaultError):
            FaultMask.from_coords([(2, 0, 0)]).validate(tiny_config)
        with pytest.raises(FaultError):
            FaultMask.from_coords([(0, 0, 3)]).validate(tiny_config)


class TestLargestHealthySubgrid:
    def test_empty_mask_returns_config(self, tiny_config):
        assert largest_healthy_subgrid(tiny_config, FaultMask()) is \
            tiny_config

    def test_single_tile_shortens_chain_or_drops_sb(self, tiny_config):
        sub = largest_healthy_subgrid(
            tiny_config, FaultMask.from_coords([(0, 0, 0)])
        )
        # 12-TPE grid loses one tile; the best sub-grid keeps 8
        # (either 2x2x2 by shortening every chain, or 3 long chains).
        assert sub.n_tpe == 8

    def test_clustered_row_faults_cost_exactly_the_rows(self):
        """Masking 2 full SB rows of the paper grid (120 TPEs = 10%)
        keeps the other 18 rows entirely: 12x5x18."""
        config = PAPER_EXAMPLE_CONFIG
        coords = [
            (row, col, pos)
            for row in (18, 19)
            for col in range(config.d2)
            for pos in range(config.d1)
        ]
        assert len(coords) == round(0.10 * config.n_tpe)
        sub = largest_healthy_subgrid(config, FaultMask.from_coords(coords))
        assert sub.grid == (12, 5, 18)
        assert sub.n_tpe / config.n_tpe == pytest.approx(0.9)

    def test_dead_column_drops_d2(self):
        """A dead SuperBlock column (bad DSP column) costs one of D2."""
        config = OverlayConfig(d1=4, d2=3, d3=4)
        coords = [
            (row, 1, pos)
            for row in range(config.d3)
            for pos in range(config.d1)
        ]
        sub = largest_healthy_subgrid(config, FaultMask.from_coords(coords))
        assert sub.grid == (4, 2, 4)

    def test_scattered_faults_keep_majority(self):
        """Scattered single-tile faults must not cliff the grid."""
        config = PAPER_EXAMPLE_CONFIG
        mask = random_tpe_mask(config, 0.05, seed=1)
        sub = largest_healthy_subgrid(config, mask)
        assert sub.n_tpe >= 0.5 * config.n_tpe

    def test_non_config_attributes_preserved(self, tiny_config):
        sub = largest_healthy_subgrid(
            tiny_config, FaultMask.from_coords([(0, 0, 0)])
        )
        assert sub.s_actbuf_words == tiny_config.s_actbuf_words
        assert sub.clk_h_mhz == tiny_config.clk_h_mhz

    def test_everything_masked_raises(self):
        config = OverlayConfig(d1=2, d2=1, d3=1)
        coords = [(0, 0, 0), (0, 0, 1)]
        with pytest.raises(FaultError):
            largest_healthy_subgrid(config, FaultMask.from_coords(coords))

    def test_accepts_plain_collection(self, tiny_config):
        sub = largest_healthy_subgrid(tiny_config, {(0, 0, 0)})
        assert sub.n_tpe == 8

    def test_deterministic(self):
        config = PAPER_EXAMPLE_CONFIG
        mask = random_tpe_mask(config, 0.1, seed=9)
        assert largest_healthy_subgrid(config, mask) == \
            largest_healthy_subgrid(config, mask)


class TestRandomTpeMask:
    def test_fraction_and_bounds(self):
        config = PAPER_EXAMPLE_CONFIG
        mask = random_tpe_mask(config, 0.1, seed=0)
        assert len(mask) == 120
        for row, col, pos in mask:
            assert 0 <= row < config.d3
            assert 0 <= col < config.d2
            assert 0 <= pos < config.d1

    def test_deterministic_per_seed(self):
        config = PAPER_EXAMPLE_CONFIG
        assert random_tpe_mask(config, 0.2, seed=4) == \
            random_tpe_mask(config, 0.2, seed=4)
        assert random_tpe_mask(config, 0.2, seed=4) != \
            random_tpe_mask(config, 0.2, seed=5)

    def test_zero_fraction_empty(self, tiny_config):
        assert random_tpe_mask(tiny_config, 0.0, seed=0) == frozenset()

    @pytest.mark.parametrize("fraction", [-0.1, 1.0, 1.5])
    def test_invalid_fraction(self, tiny_config, fraction):
        with pytest.raises(FaultError):
            random_tpe_mask(tiny_config, fraction, seed=0)
