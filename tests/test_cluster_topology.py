"""Fleet topology: racks, boards, and deterministic fan-out order."""

import pytest

from repro.cluster import Board, FleetTopology, Rack, build_fleet
from repro.errors import ServingError


class TestBoardAndRack:
    def test_board_requires_name_and_rack(self):
        with pytest.raises(ServingError):
            Board(name="", rack="rack0")
        with pytest.raises(ServingError):
            Board(name="b0", rack="")

    def test_rack_requires_boards(self):
        with pytest.raises(ServingError):
            Rack(name="rack0", boards=())

    def test_rack_rejects_foreign_board(self):
        with pytest.raises(ServingError):
            Rack(name="rack0", boards=(Board(name="b0", rack="rack1"),))

    def test_rack_board_names(self):
        rack = Rack(name="r", boards=(
            Board(name="a", rack="r"), Board(name="b", rack="r"),
        ))
        assert rack.board_names == ("a", "b")


class TestFleetTopology:
    def test_needs_a_rack(self):
        with pytest.raises(ServingError):
            FleetTopology(racks=())

    def test_duplicate_rack_names_rejected(self):
        rack = Rack(name="r", boards=(Board(name="a", rack="r"),))
        rack2 = Rack(name="r", boards=(Board(name="b", rack="r"),))
        with pytest.raises(ServingError):
            FleetTopology(racks=(rack, rack2))

    def test_duplicate_board_names_rejected(self):
        r0 = Rack(name="r0", boards=(Board(name="a", rack="r0"),))
        r1 = Rack(name="r1", boards=(Board(name="a", rack="r1"),))
        with pytest.raises(ServingError):
            FleetTopology(racks=(r0, r1))

    def test_rack_board_name_collision_rejected(self):
        r0 = Rack(name="r0", boards=(Board(name="r1", rack="r0"),))
        r1 = Rack(name="r1", boards=(Board(name="b", rack="r1"),))
        with pytest.raises(ServingError):
            FleetTopology(racks=(r0, r1))

    def test_boards_are_rack_major(self):
        fleet = build_fleet(2, 3)
        assert fleet.board_names == (
            "rack0/b0", "rack0/b1", "rack0/b2",
            "rack1/b0", "rack1/b1", "rack1/b2",
        )

    def test_counts(self):
        fleet = build_fleet(3, 4)
        assert fleet.n_racks == 3
        assert fleet.n_boards == 12
        assert fleet.rack_names == ("rack0", "rack1", "rack2")

    def test_rack_of_and_members(self):
        fleet = build_fleet(2, 2)
        assert fleet.rack_of("rack1/b0") == "rack1"
        assert fleet.members("rack0") == ("rack0/b0", "rack0/b1")

    def test_rack_of_unknown_board(self):
        with pytest.raises(ServingError):
            build_fleet(1, 1).rack_of("nope")

    def test_members_unknown_rack(self):
        with pytest.raises(ServingError):
            build_fleet(1, 1).members("nope")

    def test_domains_maps_board_to_rack(self):
        fleet = build_fleet(2, 2)
        assert fleet.domains() == {
            "rack0/b0": "rack0", "rack0/b1": "rack0",
            "rack1/b0": "rack1", "rack1/b1": "rack1",
        }

    def test_describe(self):
        text = build_fleet(2, 3).describe()
        assert "6 boards" in text
        assert "rack0(3)" in text


class TestBuildFleet:
    @pytest.mark.parametrize("racks,boards", [(0, 1), (1, 0), (-1, 2)])
    def test_nonpositive_dimensions_rejected(self, racks, boards):
        with pytest.raises(ServingError):
            build_fleet(racks, boards)

    def test_rack_prefix(self):
        fleet = build_fleet(1, 1, rack_prefix="pod")
        assert fleet.rack_names == ("pod0",)
        assert fleet.board_names == ("pod0/b0",)

    def test_board_names_override(self):
        # The override is how a fleet adopts the replica names an
        # existing fault schedule (or a plain ServingEngine) targets.
        fleet = build_fleet(
            1, 3, board_names=["overlay0", "overlay1", "overlay2"]
        )
        assert fleet.board_names == ("overlay0", "overlay1", "overlay2")
        assert fleet.rack_of("overlay2") == "rack0"

    def test_board_names_wrong_length_rejected(self):
        with pytest.raises(ServingError):
            build_fleet(2, 2, board_names=["a", "b", "c"])

    def test_topology_is_immutable(self):
        fleet = build_fleet(1, 1)
        with pytest.raises(Exception):
            fleet.racks = ()  # type: ignore[misc]
