"""Instruction encoding/decoding over the InstBUS format."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import IsaError
from repro.overlay.isa import (
    FLAG_DOUBLE_BUFFER,
    FLAG_EWOP_ACCUMULATE,
    FLAG_LAST,
    Instruction,
    OpKind,
    decode_instruction,
    encode_instruction,
)


class TestEncodeDecode:
    def test_round_trip_simple(self):
        inst = Instruction(
            op=OpKind.COMPUTE, x=4, l=9, t=288,
            act_tile_words=60, psum_tile_words=32,
            wbuf_base=0, psum_base=128,
            flags=FLAG_DOUBLE_BUFFER | FLAG_LAST,
        )
        assert decode_instruction(encode_instruction(inst)) == inst

    def test_encoding_is_16_bytes(self):
        raw = encode_instruction(Instruction(op=OpKind.NOP))
        assert len(raw) == 16

    def test_flags_decode(self):
        inst = Instruction(
            op=OpKind.COMPUTE,
            flags=FLAG_DOUBLE_BUFFER | FLAG_EWOP_ACCUMULATE | FLAG_LAST,
        )
        decoded = decode_instruction(encode_instruction(inst))
        assert decoded.double_buffer
        assert decoded.ewop_accumulate
        assert decoded.last

    def test_total_macc_cycles(self):
        inst = Instruction(op=OpKind.COMPUTE, x=3, l=5, t=7)
        assert inst.total_macc_cycles == 105

    def test_field_overflow_rejected(self):
        inst = Instruction(op=OpKind.COMPUTE, x=1 << 20)
        with pytest.raises(IsaError, match="does not fit"):
            encode_instruction(inst)

    def test_zero_trip_compute_rejected(self):
        with pytest.raises(IsaError, match="positive trip"):
            Instruction(op=OpKind.COMPUTE, x=0).validate()

    def test_wrong_length_rejected(self):
        with pytest.raises(IsaError, match="16 bytes"):
            decode_instruction(b"\x00" * 8)

    def test_unknown_opcode_rejected(self):
        raw = bytearray(encode_instruction(Instruction(op=OpKind.NOP, x=1)))
        raw[0] |= 0x0F  # opcode field = 15, undefined
        with pytest.raises(IsaError, match="unknown opcode"):
            decode_instruction(bytes(raw))

    def test_padding_bits_rejected(self):
        raw = bytearray(encode_instruction(Instruction(op=OpKind.NOP)))
        raw[15] |= 0x80  # beyond the 124 used bits
        with pytest.raises(IsaError, match="padding"):
            decode_instruction(bytes(raw))


@given(
    op=st.sampled_from([OpKind.COMPUTE, OpKind.LOAD_WEIGHT, OpKind.WRITE_BACK]),
    x=st.integers(1, (1 << 20) - 1),
    l=st.integers(1, (1 << 20) - 1),
    t=st.integers(1, (1 << 20) - 1),
    act=st.integers(0, (1 << 14) - 1),
    psum=st.integers(0, (1 << 14) - 1),
    wbase=st.integers(0, (1 << 12) - 1),
    pbase=st.integers(0, (1 << 12) - 1),
    flags=st.integers(0, 255),
)
def test_round_trip_property(op, x, l, t, act, psum, wbase, pbase, flags):
    """Any in-range instruction survives encode -> decode unchanged."""
    inst = Instruction(
        op=op, x=x, l=l, t=t,
        act_tile_words=act, psum_tile_words=psum,
        wbuf_base=wbase, psum_base=pbase, flags=flags,
    )
    assert decode_instruction(encode_instruction(inst)) == inst
