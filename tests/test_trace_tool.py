"""Trace CLI: golden output, determinism, export files, validation."""

import json
from pathlib import Path

import pytest

from repro.tools.trace import build_parser, main

GOLDEN = Path(__file__).parent / "golden" / "trace_smoke.txt"

#: The exact invocation the golden file was generated with (also run by
#: the CI trace-smoke job).
GOLDEN_ARGS = [
    "--grid", "3,2,2", "--replicas", "2", "--rate", "1200",
    "--requests", "150", "--seed", "11", "--crash-rate", "8",
    "--deadline-ms", "40",
]


class TestGolden:
    def test_matches_checked_in_golden(self, capsys):
        assert main(GOLDEN_ARGS) == 0
        assert capsys.readouterr().out == GOLDEN.read_text()

    def test_bit_identical_across_runs(self, capsys):
        assert main(GOLDEN_ARGS) == 0
        first = capsys.readouterr().out
        assert main(GOLDEN_ARGS) == 0
        assert capsys.readouterr().out == first

    def test_seed_changes_output(self, capsys):
        args = [a if a != "11" else "12" for a in GOLDEN_ARGS]
        assert main(args) == 0
        assert capsys.readouterr().out != GOLDEN.read_text()

    def test_golden_reconciles(self):
        """Every cross-check in the pinned run must read 'ok'."""
        text = GOLDEN.read_text()
        assert "MISMATCH" not in text
        assert text.count("ok") >= 5
        assert "well-formed      : ok" in text


class TestExports:
    def test_chrome_out_parses_and_matches_summary(self, capsys, tmp_path):
        chrome = tmp_path / "trace.json"
        assert main([
            "--grid", "3,2,2", "--requests", "30", "--seed", "3",
            "--chrome-out", str(chrome),
        ]) == 0
        out = capsys.readouterr().out
        doc = json.loads(chrome.read_text())
        events = doc["traceEvents"]
        assert f"chrome trace     : {len(events)} events" in out
        assert {"compiler [step]", "serving [s]"} == {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }

    def test_prom_out_written(self, capsys, tmp_path):
        prom = tmp_path / "metrics.prom"
        assert main([
            "--grid", "3,2,2", "--requests", "30", "--seed", "3",
            "--prom-out", str(prom),
        ]) == 0
        text = prom.read_text()
        assert "# TYPE serving_request_latency_s histogram" in text
        assert "# TYPE search_candidates_evaluated counter" in text
        # The file is exactly the exposition echoed on stdout.
        assert text.rstrip("\n") in capsys.readouterr().out


class TestCliSurface:
    def test_bad_grid_is_error(self, capsys):
        assert main(["--grid", "banana"]) == 1
        assert "error" in capsys.readouterr().err

    def test_invalid_rate_is_error(self, capsys):
        assert main(["--grid", "3,2,2", "--requests", "10",
                     "--crash-rate", "-1"]) == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--model", "NotAModel"])

    def test_defaults_parse(self):
        args = build_parser().parse_args([])
        assert args.model == "SmallCNN"
        assert args.seed == 0
        assert args.chrome_out is None
        assert args.prom_out is None
