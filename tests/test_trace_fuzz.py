"""Seeded fuzz: span-tree well-formedness over randomized chaos runs.

Each case draws serving and fault parameters from one explicit seed,
runs the engine with tracing on, and checks the structural invariants
every trace must satisfy: no open spans, monotonic timestamps, children
contained in parents, request roots accounting for every completed and
dropped request — plus bit-identical trace JSON when the seed repeats,
and an unchanged serving report when tracing is disabled.
"""

import random

import pytest

from repro.compiler.cache import CacheStats
from repro.faults.schedule import generate_fault_schedule
from repro.serving.batcher import BatchPolicy
from repro.serving.engine import ServingEngine
from repro.serving.request import RetryPolicy, make_requests, poisson_arrivals
from repro.serving.scheduler import ReplicaService
from repro.trace.export import chrome_trace_json
from repro.trace.metrics import MetricsRegistry
from repro.trace.span import Tracer

SEEDS = list(range(8))


class FuzzService:
    """Deterministic stand-in service: no compilation, full fault API."""

    def __init__(self, n_replicas: int, service_s: float):
        self.n_replicas = n_replicas
        self._service_s = service_s

    def latency_s(self, batch_size: int) -> float:
        return self._service_s * (1.0 + 0.1 * batch_size)

    def occupancy_s(self, batch_size: int) -> float:
        return self.latency_s(batch_size)

    def latency_split(self, batch_size: int) -> tuple[float, float]:
        latency = self.latency_s(batch_size)
        return 0.7 * latency, 0.3 * latency

    def cache_stats(self) -> CacheStats:
        return CacheStats(hits=0, misses=0, evictions=0, size=0,
                          max_entries=None)

    def replica_names(self) -> list[str]:
        return [f"fuzz{i}" for i in range(self.n_replicas)]

    def degrade_slowdown(self, masked, batch_size: int) -> float:
        return 1.0 + 0.05 * len(masked)


def _chaos_run(seed: int, tracer=None, metrics=None):
    rng = random.Random(seed)
    n_replicas = rng.randint(1, 3)
    service = FuzzService(n_replicas, service_s=rng.uniform(5e-4, 2e-3))
    times = poisson_arrivals(
        rng.uniform(300.0, 2000.0), rng.randint(30, 120), seed=seed
    )
    requests = make_requests(
        times, "fuzz",
        deadline_s=rng.choice([None, rng.uniform(0.01, 0.05)]),
    )
    faults = generate_fault_schedule(
        seed=seed + 1,
        duration_s=times[-1] - times[0] + 1e-9,
        replicas=service.replica_names(),
        grid=(2, 2, 2),
        crash_rate_hz=rng.uniform(0.0, 20.0),
        mean_repair_s=rng.uniform(0.001, 0.02),
        slowdown_rate_hz=rng.uniform(0.0, 10.0),
        tpe_fault_rate_hz=rng.uniform(0.0, 5.0),
        bitflip_rate_hz=rng.uniform(0.0, 20.0),
        correctable_fraction=0.5,
        link_fault_rate_hz=rng.uniform(0.0, 5.0),
    )
    engine = ServingEngine(
        service,
        batch_policy=BatchPolicy(
            max_batch=rng.randint(1, 8),
            max_wait_s=rng.uniform(0.0, 0.003),
        ),
        fault_schedule=faults,
        retry_policy=RetryPolicy(max_attempts=rng.randint(1, 4)),
        tracer=tracer,
        metrics=metrics,
    )
    return engine.run(requests)


@pytest.mark.parametrize("seed", SEEDS)
def test_span_tree_well_formed(seed):
    tracer = Tracer(unit="s")
    report = _chaos_run(seed, tracer=tracer)
    assert tracer.validate() == []
    assert tracer.open_depth == 0

    roots = [s for s in tracer.spans if s.name == "request"]
    assert all(s.parent_id is None for s in roots)
    by_status = {"completed": 0, "dropped": 0}
    for root in roots:
        by_status[root.args["status"]] += 1
        children = sorted(tracer.children_of(root), key=lambda s: s.start)
        if root.args["status"] == "completed":
            # queue -> compute -> dram partitions the root exactly.
            assert [c.name for c in children] == ["queue", "compute", "dram"]
            assert children[0].start == root.start
            assert children[-1].end == root.end
            for a, b in zip(children, children[1:]):
                assert a.end == b.start
        else:
            assert children == []
    assert by_status["completed"] == report.n_completed
    assert by_status["dropped"] == report.n_dropped


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_identical_seeds_identical_trace_json(seed):
    first = Tracer(unit="s")
    second = Tracer(unit="s")
    _chaos_run(seed, tracer=first)
    _chaos_run(seed, tracer=second)
    assert chrome_trace_json(first) == chrome_trace_json(second)


def test_different_seeds_differ():
    a, b = Tracer(unit="s"), Tracer(unit="s")
    _chaos_run(0, tracer=a)
    _chaos_run(1, tracer=b)
    assert chrome_trace_json(a) != chrome_trace_json(b)


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_tracing_never_perturbs_the_run(seed):
    untraced = _chaos_run(seed)
    traced = _chaos_run(seed, tracer=Tracer(unit="s"),
                        metrics=MetricsRegistry())
    assert traced.describe() == untraced.describe()
    assert traced.fault_counts == untraced.fault_counts
    assert [r.request_id for r in traced.completed] \
        == [r.request_id for r in untraced.completed]


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_metrics_match_report(seed):
    registry = MetricsRegistry()
    report = _chaos_run(seed, metrics=registry)
    completed = registry.counter("serving_requests_completed", "")
    assert completed.value() == report.n_completed
    dropped = registry.counter("serving_requests_dropped", "")
    assert sum(dropped.series().values()) == report.n_dropped
    latency = registry.histogram("serving_request_latency_s", "")
    assert latency.count() == report.n_completed
    assert latency.sum() == pytest.approx(sum(report.latencies_s))
