"""Percentiles, SLO accounting, and report aggregation."""

import pytest

from repro.errors import ServingError
from repro.serving.metrics import ServingReport, percentile
from repro.serving.request import InferenceRequest


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]  # 1..100
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0
        assert percentile(values, 0) == 1.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_single_sample(self):
        assert percentile([7.0], 99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ServingError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ServingError):
            percentile([1.0], 101)


def _record(i, arrival, dispatch, complete, batch=1, replica="r0"):
    return InferenceRequest(
        request_id=i, model="m", arrival_s=arrival, dispatch_s=dispatch,
        complete_s=complete, batch_size=batch, replica=replica,
    )


def _report(completed, rejected=0, slo_s=1.0, makespan=10.0):
    return ServingReport(
        model="m", completed=tuple(completed), n_rejected=rejected,
        slo_s=slo_s, makespan_s=makespan, queue_depth_time_avg=0.0,
        queue_depth_max=0, utilization={"r0": 0.5},
    )


class TestServingReport:
    def test_throughput(self):
        report = _report(
            [_record(i, 0.0, 0.0, 1.0) for i in range(20)], makespan=2.0
        )
        assert report.throughput_rps == pytest.approx(10.0)

    def test_slo_counts_late_and_rejected(self):
        completed = [
            _record(0, 0.0, 0.0, 0.5),   # meets 1 s SLO
            _record(1, 0.0, 0.0, 1.5),   # misses
        ]
        report = _report(completed, rejected=2)
        assert report.slo_violations == 3
        assert report.slo_violation_rate == pytest.approx(3 / 4)

    def test_mean_batch_size_weighs_batches_not_requests(self):
        # One batch of 4 at t=1 and one straggler batch of 1 at t=2.
        completed = [
            *[_record(i, 0.0, 1.0, 1.5, batch=4) for i in range(4)],
            _record(4, 1.9, 2.0, 2.5, batch=1),
        ]
        report = _report(completed)
        assert report.mean_batch_size == pytest.approx(2.5)

    def test_describe_mentions_key_metrics(self):
        report = _report([_record(0, 0.0, 0.1, 0.4)])
        text = report.describe()
        assert "p99" in text and "SLO" in text and "util" in text

    def test_empty_report_safe(self):
        report = _report([], rejected=3)
        assert report.throughput_rps == 0.0 or report.makespan_s > 0
        assert report.slo_violation_rate == 1.0
        assert report.mean_latency_s == 0.0
        assert "rejected" in report.describe()


class TestTinySamplePercentiles:
    """Regressions: high percentiles of tiny samples clamp to the max."""

    def test_p99_of_two_is_max(self):
        assert percentile([1.0, 2.0], 99) == 2.0

    def test_p95_of_two_is_max(self):
        assert percentile([5.0, 3.0], 95) == 5.0

    def test_high_q_never_exceeds_max(self):
        for n in range(1, 8):
            values = [float(i) for i in range(n)]
            for q in (90, 95, 99, 99.9, 100):
                assert percentile(values, q) == values[-1]

    def test_fractional_q_on_tiny_sample(self):
        # ceil(2 * 99.9 / 100) lands exactly on n; anything past it
        # must clamp rather than index out of range.
        assert percentile([1.0, 2.0], 99.9) == 2.0
        assert percentile([1.0], 99.9) == 1.0


class TestEmptyWindowGuards:
    """Regressions: an empty completion window never divides or raises."""

    def test_percentiles_zero_on_empty_report(self):
        report = _report([], rejected=1)
        assert report.p50_s == 0.0
        assert report.p95_s == 0.0
        assert report.p99_s == 0.0
        assert report.latency_percentile_s(99.9) == 0.0

    def test_all_ratio_metrics_finite_on_empty_report(self):
        import math

        report = _report([], rejected=0, makespan=0.0)
        for value in (
            report.throughput_rps, report.drop_rate, report.availability,
            report.slo_violation_rate, report.mean_latency_s,
            report.mean_queue_wait_s, report.mean_batch_size,
            report.mean_utilization,
        ):
            assert math.isfinite(value)

    def test_raw_percentile_still_strict_on_empty(self):
        with pytest.raises(ServingError):
            percentile([], 99)
