"""Percentiles, SLO accounting, and report aggregation."""

import pytest

from repro.errors import ServingError
from repro.serving.metrics import ServingReport, percentile
from repro.serving.request import InferenceRequest


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]  # 1..100
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0
        assert percentile(values, 0) == 1.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_single_sample(self):
        assert percentile([7.0], 99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ServingError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ServingError):
            percentile([1.0], 101)


def _record(i, arrival, dispatch, complete, batch=1, replica="r0"):
    return InferenceRequest(
        request_id=i, model="m", arrival_s=arrival, dispatch_s=dispatch,
        complete_s=complete, batch_size=batch, replica=replica,
    )


def _report(completed, rejected=0, slo_s=1.0, makespan=10.0):
    return ServingReport(
        model="m", completed=tuple(completed), n_rejected=rejected,
        slo_s=slo_s, makespan_s=makespan, queue_depth_time_avg=0.0,
        queue_depth_max=0, utilization={"r0": 0.5},
    )


class TestServingReport:
    def test_throughput(self):
        report = _report(
            [_record(i, 0.0, 0.0, 1.0) for i in range(20)], makespan=2.0
        )
        assert report.throughput_rps == pytest.approx(10.0)

    def test_slo_counts_late_and_rejected(self):
        completed = [
            _record(0, 0.0, 0.0, 0.5),   # meets 1 s SLO
            _record(1, 0.0, 0.0, 1.5),   # misses
        ]
        report = _report(completed, rejected=2)
        assert report.slo_violations == 3
        assert report.slo_violation_rate == pytest.approx(3 / 4)

    def test_mean_batch_size_weighs_batches_not_requests(self):
        # One batch of 4 at t=1 and one straggler batch of 1 at t=2.
        completed = [
            *[_record(i, 0.0, 1.0, 1.5, batch=4) for i in range(4)],
            _record(4, 1.9, 2.0, 2.5, batch=1),
        ]
        report = _report(completed)
        assert report.mean_batch_size == pytest.approx(2.5)

    def test_describe_mentions_key_metrics(self):
        report = _report([_record(0, 0.0, 0.1, 0.4)])
        text = report.describe()
        assert "p99" in text and "SLO" in text and "util" in text

    def test_empty_report_safe(self):
        report = _report([], rejected=3)
        assert report.throughput_rps == 0.0 or report.makespan_s > 0
        assert report.slo_violation_rate == 1.0
        assert report.mean_latency_s == 0.0
        assert "rejected" in report.describe()
