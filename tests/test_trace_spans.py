"""Tracer core: nesting, retrospective spans, validation, null tracer."""

import pytest

from repro.errors import TraceError
from repro.trace.span import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    as_tracer,
)


class TestStackRecording:
    def test_begin_end_nests(self):
        tr = Tracer(unit="step")
        outer = tr.begin("outer", at=0)
        inner = tr.begin("inner", at=1, track="t")
        tr.end(3, inner)
        tr.end(5, outer)
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.duration == 5
        assert tr.validate() == []

    def test_end_without_begin_rejected(self):
        with pytest.raises(TraceError):
            Tracer().end(1.0)

    def test_unbalanced_pairs_rejected(self):
        tr = Tracer()
        a = tr.begin("a", at=0.0)
        tr.begin("b", at=1.0)
        with pytest.raises(TraceError, match="unbalanced"):
            tr.end(2.0, a)

    def test_end_before_start_rejected(self):
        tr = Tracer()
        tr.begin("a", at=5.0)
        with pytest.raises(TraceError):
            tr.end(4.0)

    def test_child_cannot_start_before_parent(self):
        tr = Tracer()
        tr.begin("parent", at=10.0)
        with pytest.raises(TraceError):
            tr.begin("child", at=9.0)

    def test_event_attaches_to_innermost(self):
        tr = Tracer()
        tr.begin("outer", at=0.0)
        inner = tr.begin("inner", at=1.0)
        tr.event("tick", at=1.5, detail="x")
        assert inner.events[0].name == "tick"
        assert inner.events[0].args == {"detail": "x"}

    def test_event_without_open_span_rejected(self):
        with pytest.raises(TraceError):
            Tracer().event("tick", at=0.0)

    def test_open_depth_tracks_stack(self):
        tr = Tracer()
        assert tr.open_depth == 0
        tr.begin("a", at=0.0)
        tr.begin("b", at=0.0)
        assert tr.open_depth == 2
        tr.end(1.0)
        assert tr.open_depth == 1

    def test_non_finite_timestamp_rejected(self):
        with pytest.raises(TraceError):
            Tracer().begin("a", at=float("nan"))
        with pytest.raises(TraceError):
            Tracer().instant("i", at=float("inf"))


class TestRetrospectiveRecording:
    def test_add_span_with_parent(self):
        tr = Tracer()
        root = tr.add_span("request", 0.0, 10.0, track="requests")
        child = tr.add_span("queue", 0.0, 4.0, parent=root)
        assert child.parent_id == root.span_id
        assert tr.children_of(root) == [child]
        assert tr.validate() == []

    def test_child_escaping_parent_rejected(self):
        tr = Tracer()
        root = tr.add_span("request", 1.0, 10.0)
        with pytest.raises(TraceError, match="escapes"):
            tr.add_span("queue", 0.5, 4.0, parent=root)
        with pytest.raises(TraceError, match="escapes"):
            tr.add_span("dram", 5.0, 11.0, parent=root)

    def test_negative_duration_rejected(self):
        with pytest.raises(TraceError):
            Tracer().add_span("x", 2.0, 1.0)

    def test_zero_duration_allowed(self):
        span = Tracer().add_span("x", 3.0, 3.0)
        assert span.duration == 0.0

    def test_siblings_may_overlap(self):
        """Concurrent requests of one batch legitimately overlap."""
        tr = Tracer()
        tr.add_span("request", 0.0, 5.0)
        tr.add_span("request", 1.0, 4.0)
        assert tr.validate() == []


class TestInspection:
    def test_find_roots_by_id(self):
        tr = Tracer()
        a = tr.add_span("a", 0.0, 1.0)
        b = tr.add_span("b", 0.0, 1.0)
        tr.add_span("a", 0.5, 1.0, parent=b)
        assert [s.span_id for s in tr.find("a")] == [a.span_id, 2]
        assert tr.roots() == [a, b]
        assert tr.by_id(a.span_id) is a
        with pytest.raises(TraceError):
            tr.by_id(99)

    def test_duration_of_open_span_rejected(self):
        tr = Tracer()
        span = tr.begin("a", at=0.0)
        with pytest.raises(TraceError):
            span.duration

    def test_validate_reports_unclosed(self):
        tr = Tracer()
        tr.begin("a", at=0.0)
        problems = tr.validate()
        assert len(problems) == 1
        assert "never closed" in problems[0]

    def test_bad_unit_rejected(self):
        with pytest.raises(TraceError):
            Tracer(unit="ms")


class TestNullTracer:
    def test_records_nothing(self):
        tr = NullTracer()
        span = tr.begin("a", at=0.0)
        tr.event("e", at=0.5)
        tr.end(1.0, span)
        tr.add_span("b", 0.0, 1.0, parent=span)
        tr.instant("i", at=2.0)
        assert tr.spans == []
        assert tr.instants == []
        assert tr.open_depth == 0
        assert not tr.enabled

    def test_null_span_threads_as_parent(self):
        """Call sites pass the null parent through without branching."""
        tr = NullTracer()
        parent = tr.add_span("request", 0.0, 1.0)
        child = tr.add_span("queue", 5.0, 9.0, parent=parent)
        assert child.span_id == parent.span_id == -1

    def test_as_tracer_normalizes(self):
        assert as_tracer(None) is NULL_TRACER
        real = Tracer()
        assert as_tracer(real) is real
