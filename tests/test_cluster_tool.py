"""Cluster CLI: golden output, determinism, argument validation."""

from pathlib import Path

import pytest

from repro.tools.cluster import (
    assign_tenants,
    build_parser,
    main,
    parse_tenants,
)
from repro.serving.request import make_requests, poisson_arrivals

GOLDEN = Path(__file__).parent / "golden" / "cluster_smoke.txt"

#: The exact invocation the golden file was generated with (also run by
#: the CI cluster-smoke job).
GOLDEN_ARGS = [
    "--model", "SmallCNN", "--grid", "3,2,2",
    "--racks", "2", "--boards-per-rack", "3",
    "--rate", "20000", "--requests", "800", "--seed", "11",
    "--tenants", "alpha:2,beta:1", "--quota", "64",
    "--rack-loss-rate", "30", "--mean-rack-repair-s", "0.01",
    "--partition-rate", "10", "--correlated-dram-rate", "10",
    "--crash-rate", "20", "--bitflip-rate", "40",
    "--autoscale", "--integrity", "detect-correct",
    "--deadline-ms", "25", "--slo-ms", "15",
]


class TestGolden:
    def test_matches_checked_in_golden(self, capsys):
        assert main(GOLDEN_ARGS) == 0
        out = capsys.readouterr().out
        assert out == GOLDEN.read_text()

    def test_bit_identical_across_runs(self, capsys):
        assert main(GOLDEN_ARGS) == 0
        first = capsys.readouterr().out
        assert main(GOLDEN_ARGS) == 0
        assert capsys.readouterr().out == first

    def test_seed_changes_report(self, capsys):
        args = [a if a != "11" else "12" for a in GOLDEN_ARGS]
        assert main(args) == 0
        assert capsys.readouterr().out != GOLDEN.read_text()

    def test_golden_holds_accounting_identity(self):
        text = GOLDEN.read_text()
        assert "accounting identity   : HOLDS" in text
        assert "VIOLAT" not in text


class TestCliSurface:
    FAST = [
        "--grid", "3,2,2", "--racks", "1", "--boards-per-rack", "2",
        "--rate", "2000", "--requests", "100", "--seed", "3",
    ]

    def test_reports_campaign_metrics(self, capsys):
        assert main(self.FAST + ["--rack-loss-rate", "10"]) == 0
        out = capsys.readouterr().out
        assert "availability" in out
        assert "accounting identity" in out
        assert "cold start" in out
        assert "fleet" in out

    def test_zero_rates_run_clean(self, capsys):
        assert main(self.FAST + [
            "--rack-loss-rate", "0", "--crash-rate", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "100.0000%" in out
        assert "HOLDS" in out

    def test_bad_grid_is_error(self, capsys):
        assert main(["--grid", "banana"]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_tenant_spec_is_error(self, capsys):
        assert main(self.FAST + ["--tenants", ":2"]) == 1
        assert "error" in capsys.readouterr().err

    def test_invalid_rate_is_error(self, capsys):
        assert main(self.FAST + ["--rack-loss-rate", "-1"]) == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--model", "NotAModel"])

    def test_defaults_parse(self):
        args = build_parser().parse_args([])
        assert args.model == "SmallCNN"
        assert args.racks == 4
        assert args.boards_per_rack == 4
        assert args.tenants == ""
        assert not args.autoscale


class TestTenantHelpers:
    def test_parse_tenants(self):
        assert parse_tenants("alpha:2,beta:1") == {
            "alpha": 2.0, "beta": 1.0,
        }
        assert parse_tenants("solo") == {"solo": 1.0}
        assert parse_tenants("") == {}
        assert parse_tenants("a:1, b:3 ,") == {"a": 1.0, "b": 3.0}

    def test_parse_tenants_rejects_nameless(self):
        with pytest.raises(ValueError):
            parse_tenants(":2")

    def test_assign_tenants_is_weight_proportional(self):
        requests = make_requests(
            poisson_arrivals(1000.0, 300, seed=0), "m",
        )
        assign_tenants(requests, {"heavy": 2.0, "light": 1.0})
        counts = {"heavy": 0, "light": 0}
        for request in requests:
            counts[request.tenant] += 1
        assert counts == {"heavy": 200, "light": 100}

    def test_assign_tenants_deterministic(self):
        a = make_requests(poisson_arrivals(1000.0, 50, seed=0), "m")
        b = make_requests(poisson_arrivals(1000.0, 50, seed=0), "m")
        assign_tenants(a, {"x": 1.0, "y": 3.0})
        assign_tenants(b, {"x": 1.0, "y": 3.0})
        assert [r.tenant for r in a] == [r.tenant for r in b]

    def test_assign_tenants_noop_without_weights(self):
        requests = make_requests(poisson_arrivals(1000.0, 5, seed=0), "m")
        assign_tenants(requests, {})
        assert all(r.tenant == "default" for r in requests)
