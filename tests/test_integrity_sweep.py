"""Seeded single-bit-flip sweeps: 100% detection, exact localization.

Satellite guarantee of the integrity PR: over a seeded sweep of single
bit-flips across every site class, every flip that corrupts the result
is detected; every psum flip (a true single-element output corruption)
is localized by its row+column syndrome pair and corrected back to the
golden result bit for bit; and the outcome counters add up exactly.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.integrity import (
    BitFlip,
    abft_layer_output,
    draw_layer_flips,
    operand_sizes,
    split_flips,
)
from repro.sim.functional import (
    corrupted_layer_output,
    golden_layer_output,
    random_layer_operands,
)
from repro.workloads.layers import ConvLayer, MatMulLayer

LAYERS = [
    MatMulLayer("mm", in_features=13, out_features=7, batch=3),
    ConvLayer("conv", in_channels=4, out_channels=6, in_h=8, in_w=8,
              kernel_h=3, kernel_w=3, stride=1, padding=1),
    ConvLayer("dw", in_channels=6, out_channels=6, in_h=7, in_w=7,
              kernel_h=3, kernel_w=3, stride=2, padding=1, groups=6),
]


@pytest.mark.parametrize("layer", LAYERS, ids=lambda l: l.name)
class TestSingleFlipSweep:
    def _sweep(self, layer, site, n, seed):
        """Inject n seeded flips at one site; return outcome counters."""
        np_rng = np.random.default_rng(seed)
        flip_rng = random.Random(seed)
        counts = dict(injected=0, corrupting=0, detected=0, corrected=0,
                      missed=0)
        for _ in range(n):
            weights, acts = random_layer_operands(layer, np_rng)
            flip = draw_layer_flips(layer, flip_rng, site=site)
            w_f, a_f, p_f = split_flips((flip,))
            golden = golden_layer_output(layer, weights, acts)
            corrupted = corrupted_layer_output(
                layer, weights, acts,
                weight_flips=w_f, act_flips=a_f, psum_flips=p_f,
            )
            result = abft_layer_output(
                layer, weights, acts,
                weight_flips=w_f, act_flips=a_f, psum_flips=p_f,
            )
            counts["injected"] += 1
            if np.any(corrupted != golden):
                counts["corrupting"] += 1
                if result.detected:
                    counts["detected"] += 1
                else:
                    counts["missed"] += 1
            if result.corrected:
                counts["corrected"] += 1
                assert np.array_equal(result.output, golden)
        return counts

    def test_psum_flips_all_detected_and_corrected(self, layer):
        counts = self._sweep(layer, "psum", n=40, seed=1)
        # A psum flip always changes the stored accumulator (XOR of one
        # bit) — every injection corrupts, every corruption is detected
        # AND localized to its single element.
        assert counts["corrupting"] == counts["injected"] == 40
        assert counts["detected"] == 40
        assert counts["corrected"] == 40
        assert counts["missed"] == 0

    def test_weight_flips_all_detected(self, layer):
        counts = self._sweep(layer, "weight", n=40, seed=2)
        assert counts["missed"] == 0
        assert counts["detected"] == counts["corrupting"]
        # Operand corruptions smear across a whole output row/column —
        # never "corrected", always escalated.
        assert counts["corrected"] == 0

    def test_act_flips_all_detected(self, layer):
        counts = self._sweep(layer, "act", n=40, seed=3)
        assert counts["missed"] == 0
        assert counts["detected"] == counts["corrupting"]
        assert counts["corrected"] == 0

    def test_mixed_site_sweep_counters_reconcile(self, layer):
        counts = self._sweep(layer, None, n=60, seed=4)
        assert counts["injected"] == 60
        assert counts["detected"] + counts["missed"] == counts["corrupting"]
        assert counts["missed"] == 0


class TestFlipDrawing:
    def test_draws_are_seed_deterministic(self):
        layer = LAYERS[0]
        rng_a, rng_b, rng_c = (random.Random(s) for s in (9, 9, 10))
        a = [draw_layer_flips(layer, rng_a) for _ in range(10)]
        b = [draw_layer_flips(layer, rng_b) for _ in range(10)]
        c = [draw_layer_flips(layer, rng_c) for _ in range(10)]
        assert a == b  # identical seed replays the sequence exactly
        assert a != c  # a different seed moves it

    def test_sites_cover_all_classes_proportionally(self):
        layer = LAYERS[1]
        rng = random.Random(0)
        sites = {draw_layer_flips(layer, rng).site for _ in range(200)}
        assert sites == {"weight", "act", "psum"}

    def test_flip_indices_stay_in_range(self):
        layer = LAYERS[2]
        w_words, a_words, p_words = operand_sizes(layer)
        rng = random.Random(5)
        for _ in range(300):
            flip = draw_layer_flips(layer, rng)
            bound = {"weight": w_words, "act": a_words,
                     "psum": p_words}[flip.site]
            assert 0 <= flip.index < bound
            assert 0 <= flip.bit < (48 if flip.site == "psum" else 16)

    def test_bitflip_validates(self):
        from repro.errors import FaultError
        with pytest.raises(FaultError):
            BitFlip("weight", 0, 16)
        with pytest.raises(FaultError):
            BitFlip("psum", -1, 0)
        with pytest.raises(FaultError):
            BitFlip("dram", 0, 0)
