"""Gauge-driven autoscaler: thresholds, cooldown, emergency rescue."""

import math

import pytest

from repro.cluster import AutoscalePolicy, Autoscaler, ClusterRouter, build_fleet
from repro.cluster.autoscale import (
    GAUGE_P99_S,
    GAUGE_QUEUE_DEPTH,
    GAUGE_UTILIZATION,
)
from repro.errors import ServingError
from repro.trace.metrics import MetricsRegistry


def gauges(depth=0.0, util=0.0, p99=0.0) -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.gauge(GAUGE_QUEUE_DEPTH).set(depth)
    registry.gauge(GAUGE_UTILIZATION).set(util)
    registry.gauge(GAUGE_P99_S).set(p99)
    return registry


def fleet_router(n_boards=4, active=None) -> ClusterRouter:
    router = ClusterRouter(build_fleet(1, n_boards))
    if active is not None:
        for board in router.boards[active:]:
            board.active = False
    return router


class TestAutoscalePolicy:
    @pytest.mark.parametrize("kwargs", [
        dict(interval_s=0.0),
        dict(interval_s=math.nan),
        dict(queue_high_per_board=-1.0),
        dict(queue_low_per_board=4.0, queue_high_per_board=4.0),
        dict(p99_high_s=0.0),
        dict(min_active=0),
        dict(min_active=4, max_active=2),
        dict(max_step=0),
        dict(cooldown_ticks=-1),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ServingError):
            AutoscalePolicy(**kwargs)

    def test_defaults_valid(self):
        AutoscalePolicy()


class TestScaleUp:
    POLICY = AutoscalePolicy(queue_high_per_board=4.0, max_step=2)

    def test_deep_queue_activates_standby(self):
        router = fleet_router(4, active=1)
        scaler = Autoscaler(self.POLICY, cold_start_s=5e-3)
        activated, deactivated = scaler.tick(
            1.0, gauges(depth=10), router)
        assert activated == ["rack0/b1", "rack0/b2"]  # max_step = 2
        assert deactivated == []
        assert scaler.scale_ups == 2
        # Activation pays the cold start before the board is placeable.
        board = router.by_name("rack0/b1")
        assert board.active
        assert board.warm_at_s == pytest.approx(1.0 + 5e-3)
        assert router.free_board(1.0) is router.by_name("rack0/b0")
        assert router.free_board(1.0 + 5e-3).name in \
            ("rack0/b0", "rack0/b1")

    def test_shallow_queue_is_steady(self):
        router = fleet_router(4, active=1)
        scaler = Autoscaler(self.POLICY, cold_start_s=0.0)
        assert scaler.tick(1.0, gauges(depth=2), router) == ([], [])

    def test_p99_breach_scales_up(self):
        policy = AutoscalePolicy(p99_high_s=10e-3, max_step=1)
        router = fleet_router(3, active=1)
        scaler = Autoscaler(policy, cold_start_s=0.0)
        activated, _ = scaler.tick(
            1.0, gauges(depth=1, p99=20e-3), router)
        assert activated == ["rack0/b1"]

    def test_max_active_caps_growth(self):
        policy = AutoscalePolicy(max_step=8, max_active=2)
        router = fleet_router(4, active=1)
        scaler = Autoscaler(policy, cold_start_s=0.0)
        activated, _ = scaler.tick(1.0, gauges(depth=100), router)
        assert len(activated) == 1
        assert router.n_active == 2

    def test_emergency_rescues_stranded_queue(self):
        # Zero routable boards + queued work must activate standby even
        # past max_active — otherwise the queue is stranded forever.
        policy = AutoscalePolicy(max_active=1)
        router = fleet_router(3, active=1)
        router.crash("rack0/b0", 1.0)
        assert router.n_routable == 0
        scaler = Autoscaler(policy, cold_start_s=0.0)
        activated, _ = scaler.tick(1.0, gauges(depth=1), router)
        assert activated == ["rack0/b1"]

    def test_dead_standby_not_activated(self):
        router = fleet_router(3, active=1)
        router.power_down_rack("rack0", 1.0)
        scaler = Autoscaler(self.POLICY, cold_start_s=0.0)
        assert scaler.tick(1.0, gauges(depth=50), router) == ([], [])


class TestScaleDown:
    POLICY = AutoscalePolicy(
        queue_low_per_board=0.5, util_low=0.35, min_active=1,
        cooldown_ticks=2,
    )

    def test_idle_fleet_drains_after_cooldown(self):
        router = fleet_router(3)
        scaler = Autoscaler(self.POLICY, cold_start_s=0.0)
        idle = gauges(depth=0, util=0.1)
        assert scaler.tick(1.0, idle, router) == ([], [])  # cooldown 2->1
        assert scaler.tick(2.0, idle, router) == ([], [])  # cooldown 1->0
        activated, deactivated = scaler.tick(3.0, idle, router)
        assert (activated, deactivated) == ([], ["rack0/b2"])
        assert not router.by_name("rack0/b2").active
        assert scaler.scale_downs == 1
        # Cooldown re-arms: the next tick must not drain again.
        assert scaler.tick(4.0, idle, router) == ([], [])

    def test_min_active_floor(self):
        router = fleet_router(2, active=1)
        scaler = Autoscaler(self.POLICY, cold_start_s=0.0)
        idle = gauges(depth=0, util=0.0)
        for t in range(5):
            assert scaler.tick(float(t), idle, router) == ([], [])
        assert router.n_active == 1

    def test_busy_fleet_not_drained(self):
        router = fleet_router(3)
        scaler = Autoscaler(self.POLICY, cold_start_s=0.0)
        busy = gauges(depth=1, util=0.9)
        for t in range(5):
            assert scaler.tick(float(t), busy, router) == ([], [])

    def test_drains_highest_index_up_board(self):
        router = fleet_router(3)
        router.crash("rack0/b2", 0.0)  # dead board must not be "drained"
        scaler = Autoscaler(
            AutoscalePolicy(cooldown_ticks=0), cold_start_s=0.0)
        _, deactivated = scaler.tick(1.0, gauges(), router)
        assert deactivated == ["rack0/b1"]

    def test_invalid_cold_start_rejected(self):
        with pytest.raises(ServingError):
            Autoscaler(self.POLICY, cold_start_s=-1.0)
        with pytest.raises(ServingError):
            Autoscaler(self.POLICY, cold_start_s=math.nan)
