"""The markdown report generator."""

from repro.tools.report import generate_report, main


class TestGenerateReport:
    def test_quick_report_sections(self):
        text = generate_report(full=False)
        assert "# FTDL reproduction report" in text
        assert "## Table I" in text
        assert "## Fig. 6" in text
        assert "## Fig. 7" in text
        assert "Skipped" in text  # Table II deferred without --full

    def test_quick_report_has_all_models(self):
        text = generate_report(full=False)
        for model in ("GoogLeNet", "ResNet50", "AlphaGoZero",
                      "Sentimental-seqCNN", "Sentimental-seqLSTM"):
            assert model in text

    def test_fig6_rows_for_both_devices(self):
        text = generate_report(full=False)
        assert "### vu125" in text
        assert "### 7vx330t" in text
        assert text.count("| (1") >= 10  # grid rows in the tables

    def test_cli_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(["--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out
        assert out.read_text().startswith("# FTDL reproduction report")
