"""Serving-engine integrity policies: detection, recovery, bit-identity.

The contract under test: ``IntegrityPolicy.OFF`` reproduces the
pre-integrity engine bit for bit; detecting policies let corrupted
batches run to completion, fail ABFT verification at retirement, and
route them to drop / re-execute / correct-in-place; and the integrity
counters, tracer instants, and health-monitor SDC exposure all
reconcile exactly.
"""

from __future__ import annotations

import pytest

from repro.compiler.cache import CacheStats
from repro.errors import IntegrityError
from repro.faults import (
    DramBitFlip,
    FaultSchedule,
    LinkFault,
    ReplicaCrash,
    TPEFault,
)
from repro.integrity import IntegrityPolicy
from repro.serving.batcher import BatchPolicy
from repro.serving.engine import DROP_SDC, ServingEngine
from repro.serving.request import RetryPolicy, make_requests, uniform_arrivals
from repro.trace import Tracer
from repro.trace.metrics import MetricsRegistry


class StubService:
    """Fixed service time per batch, N replicas, TPE-degradable."""

    def __init__(self, n_replicas: int = 1, service_s: float = 1e-3):
        self.n_replicas = n_replicas
        self._service_s = service_s

    def latency_s(self, batch_size: int) -> float:
        return self._service_s

    def occupancy_s(self, batch_size: int) -> float:
        return self._service_s

    def cache_stats(self) -> CacheStats:
        return CacheStats(hits=0, misses=0, evictions=0, size=0,
                          max_entries=None)

    def replica_names(self) -> list[str]:
        return [f"stub{i}" for i in range(self.n_replicas)]

    def degrade_slowdown(self, masked, batch_size: int) -> float:
        return 1.0 + 0.5 * len(masked)


TPE_UPSET = TPEFault(0.0005, "stub0", 0, 0, 0, stuck=False)
DRAM_UPSET = DramBitFlip(0.0005, "stub0", correctable=False)


def _run(policy, events=(TPE_UPSET,), n_requests=1, **kwargs):
    kwargs.setdefault("batch_policy", BatchPolicy(max_batch=1,
                                                  max_wait_s=0.0))
    kwargs.setdefault("retry_policy", RetryPolicy())
    engine = ServingEngine(
        StubService(),
        fault_schedule=FaultSchedule.from_events(list(events)),
        integrity_policy=policy,
        **kwargs,
    )
    times = [i * 5e-3 for i in range(n_requests)]
    return engine.run(make_requests(times, "stub"))


class TestOffIsBitIdentical:
    """OFF must reproduce the pre-integrity engine exactly."""

    def _scenario(self, **kwargs):
        engine = ServingEngine(
            StubService(n_replicas=2),
            batch_policy=BatchPolicy(max_batch=4, max_wait_s=0.5e-3),
            fault_schedule=FaultSchedule.from_events([
                TPE_UPSET,
                DramBitFlip(0.012, "stub1", correctable=False),
                ReplicaCrash(0.020, "stub0"),
            ]),
            retry_policy=RetryPolicy(),
            slo_s=5e-3,
            **kwargs,
        )
        return engine.run(
            make_requests(uniform_arrivals(800.0, 40), "stub",
                          deadline_s=0.030)
        )

    def test_off_matches_default_engine(self):
        base = self._scenario()
        off = self._scenario(integrity_policy="off")
        assert [r.complete_s for r in off.completed] \
            == [r.complete_s for r in base.completed]
        assert [r.attempts for r in off.completed] \
            == [r.attempts for r in base.completed]
        assert off.drop_reasons == base.drop_reasons
        assert off.n_retries == base.n_retries
        assert off.describe() == base.describe()

    def test_off_reports_no_integrity_section(self):
        off = self._scenario(integrity_policy=IntegrityPolicy.OFF)
        assert off.integrity_policy is None
        assert off.integrity_counts == {}
        assert "integrity" not in off.describe()

    def test_off_aborts_at_fault_time(self):
        report = _run("off")
        (req,) = report.completed
        # The oracle abort-and-retry path: second attempt, no
        # verification-failure accounting.
        assert req.attempts == 2
        assert report.integrity_counts == {}


class TestDetectingPolicies:
    def test_detect_drops_at_retirement(self):
        report = _run("detect")
        assert report.n_completed == 0
        assert report.drop_reasons == {DROP_SDC: 1}
        assert report.integrity_counts == {"sdc_detected": 1, "dropped": 1}
        assert report.integrity_policy == "detect"
        (req,) = report.dropped
        # The batch paid its full service time before verification
        # failed — detection happens at retirement, not at fault time —
        # so it was dispatched normally and never marked complete.
        assert req.drop_reason == DROP_SDC
        assert req.dispatch_s == pytest.approx(0.0)
        assert req.complete_s is None

    def test_reexecute_completes_via_retry(self):
        report = _run("detect-reexecute")
        (req,) = report.completed
        assert req.attempts == 2
        assert report.integrity_counts == {"sdc_detected": 1,
                                           "reexecuted": 1}

    def test_correct_repairs_tpe_upset_in_place(self):
        report = _run("detect-correct")
        (req,) = report.completed
        # Corrected from the syndromes: no re-execution, no extra
        # latency beyond the verification outcome itself.
        assert req.attempts == 1
        assert req.complete_s == pytest.approx(1e-3)
        assert report.integrity_counts == {"sdc_detected": 1,
                                           "corrected": 1}

    def test_correct_reexecutes_dram_corruption(self):
        # A DRAM upset smears an operand across the whole batch — not
        # localizable to one accumulator, so it falls back to retry.
        report = _run("detect-correct", events=(DRAM_UPSET,))
        (req,) = report.completed
        assert req.attempts == 2
        assert report.integrity_counts == {"sdc_detected": 1,
                                           "reexecuted": 1}

    def test_stacked_corruptions_never_corrected(self):
        report = _run(
            "detect-correct",
            events=(TPE_UPSET,
                    TPEFault(0.0006, "stub0", 1, 1, 1, stuck=False)),
        )
        (req,) = report.completed
        assert req.attempts == 2
        assert report.integrity_counts == {"sdc_detected": 1,
                                           "reexecuted": 1}

    def test_link_fault_keeps_abort_path(self):
        # Link CRC already catches transfer corruption at fault time —
        # no ABFT verdict is involved.
        report = _run("detect-correct", events=(LinkFault(0.0005, "stub0"),))
        (req,) = report.completed
        assert req.attempts == 2
        assert report.integrity_counts == {}

    def test_describe_shows_integrity_line(self):
        text = _run("detect-reexecute").describe()
        assert "integrity" in text
        assert "policy=detect-reexecute" in text
        assert "sdc_detected=1" in text

    def test_crash_before_retirement_supersedes_verification(self):
        # The corrupted batch never retires: the replica crashes first,
        # the abort path cleans up the corruption bookkeeping, and the
        # request is retried with no integrity accounting.
        report = _run(
            "detect",
            events=(TPE_UPSET, ReplicaCrash(0.0007, "stub0")),
            retry_policy=RetryPolicy(max_attempts=4),
        )
        assert report.integrity_counts == {}
        assert report.n_completed + report.n_dropped == 1


class TestObservabilityReconciliation:
    def _observed(self, policy):
        tracer = Tracer()
        metrics = MetricsRegistry()
        report = _run(
            policy, n_requests=3,
            events=(
                TPE_UPSET,
                DramBitFlip(0.0055, "stub0", correctable=False),
                TPEFault(0.0105, "stub0", 2, 0, 0, stuck=False),
            ),
            tracer=tracer, metrics=metrics,
        )
        return report, tracer, metrics

    def test_instants_match_counters(self):
        report, tracer, _ = self._observed("detect-correct")
        counts = report.integrity_counts
        names = [i.name for i in tracer.instants]
        assert names.count("integrity.sdc_detected") \
            == counts["sdc_detected"] == 3
        assert names.count("integrity.corrected") \
            == counts.get("corrected", 0) == 2
        assert names.count("integrity.reexecuted") \
            == counts.get("reexecuted", 0) == 1

    def test_metrics_counter_matches(self):
        report, _, metrics = self._observed("detect")
        counter = metrics.counter("integrity_events")
        total = sum(counter.series().values())
        assert total == report.integrity_counts["sdc_detected"] \
            + report.integrity_counts["dropped"]

    def test_health_counts_sdc_exposure(self):
        for policy in ("off", "detect"):
            report, tracer, _ = self._observed(policy)
            assert report.health is not None
            assert report.health.dram_uncorrectable == 1
            assert report.health.dram_uncorrectable \
                == report.fault_counts["dram_uncorrectable"]
            exposure = [i for i in tracer.instants
                        if i.name == "health.sdc_exposure"]
            assert len(exposure) == 1
            assert "uncorrectable DRAM upsets (SDC exposure)" \
                in report.health.describe()

    def test_counter_identity(self):
        for policy in ("detect", "detect-reexecute", "detect-correct"):
            report = _run(
                policy, n_requests=4,
                events=(
                    TPE_UPSET,
                    DramBitFlip(0.0055, "stub0", correctable=False),
                ),
            )
            counts = report.integrity_counts
            assert counts["sdc_detected"] == (
                counts.get("corrected", 0) + counts.get("reexecuted", 0)
                + counts.get("dropped", 0)
            )


class TestPolicyParsing:
    def test_parse_spellings(self):
        assert IntegrityPolicy.parse("Detect_Correct") \
            is IntegrityPolicy.DETECT_CORRECT
        assert IntegrityPolicy.parse(" off ") is IntegrityPolicy.OFF
        assert IntegrityPolicy.parse(IntegrityPolicy.DETECT) \
            is IntegrityPolicy.DETECT

    def test_parse_rejects_unknown(self):
        with pytest.raises(IntegrityError, match="choose from"):
            IntegrityPolicy.parse("paranoid")
        with pytest.raises(IntegrityError):
            ServingEngine(StubService(), integrity_policy="verify-twice")

    def test_property_matrix(self):
        assert not IntegrityPolicy.OFF.detects
        assert IntegrityPolicy.DETECT.detects
        assert not IntegrityPolicy.DETECT.reexecutes
        assert IntegrityPolicy.DETECT_REEXECUTE.reexecutes
        assert not IntegrityPolicy.DETECT_REEXECUTE.corrects
        assert IntegrityPolicy.DETECT_CORRECT.corrects
        assert IntegrityPolicy.DETECT_CORRECT.reexecutes
