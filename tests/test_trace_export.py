"""Exporters: Chrome trace JSON shape, Prometheus text, determinism."""

import json

import pytest

from repro.errors import TraceError
from repro.trace.export import chrome_trace, chrome_trace_json, prometheus_text
from repro.trace.metrics import MetricsRegistry
from repro.trace.span import Tracer


def _sample_tracer() -> Tracer:
    tr = Tracer(unit="s")
    root = tr.add_span("request", 0.0, 2e-3, track="requests", id=0)
    tr.add_span("queue", 0.0, 1e-3, parent=root, track="requests")
    tr.add_span("compute", 1e-3, 2e-3, parent=root, track="requests")
    tr.instant("fault.crash", at=1.5e-3, track="overlay0")
    return tr


class TestChromeTrace:
    def test_complete_events_and_metadata(self):
        doc = chrome_trace(_sample_tracer())
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert phases.count("X") == 3
        assert phases.count("i") == 1
        names = [e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert names == ["trace [s]"]
        thread_names = {e["args"]["name"] for e in doc["traceEvents"]
                        if e["ph"] == "M" and e["name"] == "thread_name"}
        assert thread_names == {"requests", "overlay0"}

    def test_seconds_scale_to_microseconds(self):
        doc = chrome_trace(_sample_tracer())
        root = next(e for e in doc["traceEvents"]
                    if e.get("name") == "request")
        assert root["ts"] == 0.0
        assert root["dur"] == pytest.approx(2e3)  # 2 ms -> 2000 us

    def test_step_unit_maps_one_to_one(self):
        tr = Tracer(unit="step")
        tr.add_span("search", 0, 120, track="search")
        doc = chrome_trace(tr)
        span = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert span["dur"] == 120

    def test_multiple_tracers_get_distinct_pids(self):
        doc = chrome_trace({
            "compiler": Tracer(unit="step"), "serving": _sample_tracer(),
        })
        processes = {e["args"]["name"]: e["pid"] for e in doc["traceEvents"]
                     if e["ph"] == "M" and e["name"] == "process_name"}
        assert processes == {"compiler [step]": 1, "serving [s]": 2}

    def test_open_span_rejected(self):
        tr = Tracer()
        tr.begin("open", at=0.0)
        with pytest.raises(TraceError, match="open spans"):
            chrome_trace(tr)

    def test_json_is_deterministic_and_parses(self):
        first = chrome_trace_json(_sample_tracer())
        second = chrome_trace_json(_sample_tracer())
        assert first == second
        assert json.loads(first)["displayTimeUnit"] == "ms"


class TestPrometheusText:
    def test_counter_gauge_histogram_exposition(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", "served").inc(3)
        reg.counter("drops", "").inc(reason="deadline")
        reg.gauge("depth", "peak").set(42)
        h = reg.histogram("lat", "latency", buckets=(0.001, 0.01))
        h.observe(0.0005)
        h.observe(0.5)
        text = prometheus_text(reg)
        assert "# TYPE requests_total counter" in text
        assert "requests_total 3" in text
        assert 'drops{reason="deadline"} 1' in text
        assert "# TYPE depth gauge" in text
        assert "depth 42" in text
        assert 'lat_bucket{le="0.001"} 1' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 0.5005" in text
        assert "lat_count 2" in text

    def test_sorted_by_metric_name(self):
        reg = MetricsRegistry()
        reg.counter("zeta", "").inc()
        reg.counter("alpha", "").inc()
        text = prometheus_text(reg)
        assert text.index("alpha") < text.index("zeta")

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_never_incremented_counter_reads_zero(self):
        reg = MetricsRegistry()
        reg.counter("x", "")
        assert "x 0" in prometheus_text(reg)

    def test_deterministic_across_label_insertion_order(self):
        def build(order):
            reg = MetricsRegistry()
            c = reg.counter("x", "")
            for reason in order:
                c.inc(reason=reason)
            return prometheus_text(reg)

        assert build(["a", "b"]) == build(["b", "a"])
