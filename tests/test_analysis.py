"""Analysis layer: network evaluation, roofline, Table II, ASCII plots."""

import pytest

from repro.analysis.ascii_plot import line_plot, scatter_plot
from repro.analysis.comparison import build_table2, format_table2
from repro.analysis.efficiency import evaluate_network
from repro.analysis.roofline import ridge_intensity, roof_curve, roofline_points
from repro.compiler.search import ScheduleSearch
from repro.errors import FTDLError
from repro.fpga.devices import get_device
from repro.overlay.config import OverlayConfig
from repro.workloads.layers import ConvLayer, EwopLayer, MatMulLayer
from repro.workloads.network import Network


@pytest.fixture
def config():
    return OverlayConfig(
        d1=4, d2=2, d3=4, s_actbuf_words=128,
        s_wbuf_words=1024, s_psumbuf_words=2048, clk_h_mhz=650.0,
    )


@pytest.fixture
def mini_net():
    return Network(
        name="MiniNet",
        application="test",
        layers=(
            ConvLayer("c1", 3, 8, in_h=16, in_w=16, kernel_h=3, kernel_w=3, padding=1),
            EwopLayer("r1", op="relu", n_elements=8 * 16 * 16),
            ConvLayer("c2", 8, 16, in_h=16, in_w=16, kernel_h=3, kernel_w=3, padding=1),
            EwopLayer("r2", op="relu", n_elements=16 * 16 * 16),
            MatMulLayer("fc", in_features=16 * 16 * 16, out_features=10),
        ),
    )


class TestNetworkEvaluation:
    def test_totals_sum_layers(self, mini_net, config):
        result = evaluate_network(mini_net, config)
        assert result.total_cycles == sum(l.cycles for l in result.layers)
        assert len(result.layers) == 3

    def test_fps_and_seconds_consistent(self, mini_net, config):
        result = evaluate_network(mini_net, config)
        assert result.fps == pytest.approx(1.0 / result.seconds_per_frame)

    def test_network_efficiency_bounded(self, mini_net, config):
        result = evaluate_network(mini_net, config)
        assert 0.0 < result.hardware_efficiency <= 1.0

    def test_attained_gops_below_peak(self, mini_net, config):
        result = evaluate_network(mini_net, config)
        assert result.attained_gops < config.peak_gops

    def test_mean_e_wbuf_in_unit_interval(self, mini_net, config):
        result = evaluate_network(mini_net, config)
        assert 0.0 < result.mean_e_wbuf <= 1.0

    def test_host_ewop_matches_breakdown(self, mini_net, config):
        result = evaluate_network(mini_net, config)
        assert result.host_ewop_ops == mini_net.op_breakdown().ewop_ops

    def test_dram_trace_nonempty(self, mini_net, config):
        result = evaluate_network(mini_net, config)
        trace = result.dram_trace()
        assert trace.total_words("RD") > 0
        assert trace.total_words("WR") > 0

    def test_describe(self, mini_net, config):
        assert "MiniNet" in evaluate_network(mini_net, config).describe()


class TestRoofline:
    def test_points_from_topk(self, config):
        layer = ConvLayer("c", 8, 16, in_h=12, in_w=12, kernel_h=3, kernel_w=3, padding=1)
        schedules = ScheduleSearch(layer, config, top_k=20).run()
        points = roofline_points(schedules)
        assert len(points) == 20
        for point in points:
            assert point.attained_gops <= config.peak_gops * 1.001
            assert 0.0 < point.e_wbuf <= 1.0
            assert point.intensity_ops_per_byte > 0

    def test_points_below_roof(self, config):
        """No schedule may beat the roofline itself."""
        layer = ConvLayer("c", 8, 16, in_h=12, in_w=12, kernel_h=3, kernel_w=3, padding=1)
        points = roofline_points(ScheduleSearch(layer, config, top_k=10).run())
        for point in points:
            roof = min(
                config.peak_gops,
                point.intensity_ops_per_byte * config.dram_rd_gbps,
            )
            assert point.attained_gops <= roof * 1.05

    def test_roof_curve_shape(self, config):
        curve = roof_curve(config, [0.1, 1.0, 10.0, 1000.0])
        ys = [y for _, y in curve]
        assert ys == sorted(ys)
        assert ys[-1] == config.peak_gops

    def test_ridge_point(self, config):
        ridge = ridge_intensity(config)
        (x_lo, y_lo), = roof_curve(config, [ridge])
        assert y_lo == pytest.approx(config.peak_gops)

    def test_empty_intensities_rejected(self, config):
        with pytest.raises(FTDLError):
            roof_curve(config, [])


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        config = OverlayConfig(
            d1=4, d2=2, d3=4, s_actbuf_words=128,
            s_wbuf_words=1024, s_psumbuf_words=2048, clk_h_mhz=650.0,
        )
        net = Network(
            name="MiniNet",
            application="test",
            layers=(
                ConvLayer("c1", 3, 8, in_h=16, in_w=16, kernel_h=3,
                          kernel_w=3, padding=1),
                ConvLayer("c2", 8, 16, in_h=16, in_w=16, kernel_h=3,
                          kernel_w=3, padding=1),
            ),
        )
        results = {"MiniNet": evaluate_network(net, config)}
        return build_table2(results, get_device("vu125"))

    def test_eleven_rows(self, rows):
        assert len(rows) == 11
        assert rows[-1].key == "FTDL"

    def test_ftdl_frequency_dominates(self, rows):
        ftdl = rows[-1]
        assert all(ftdl.dsp_freq_mhz > r.dsp_freq_mhz for r in rows[:-1])

    def test_speedups_relative_to_first_row(self, rows):
        baseline = rows[0]
        assert baseline.speedup_over(baseline, "MiniNet") == pytest.approx(1.0)
        for row in rows:
            expected = row.fps["MiniNet"] / baseline.fps["MiniNet"]
            assert row.speedup_over(baseline, "MiniNet") == pytest.approx(expected)

    def test_ftdl_power_efficiency_positive(self, rows):
        assert rows[-1].gops_per_watt > 0

    def test_format_renders_all_rows(self, rows):
        text = format_table2(rows, ["MiniNet"])
        assert text.count("\n") == len(rows)
        assert "FTDL" in text and "N/A" in text

    def test_empty_results_rejected(self):
        with pytest.raises(FTDLError):
            build_table2({}, get_device("vu125"))


class TestAsciiPlots:
    def test_scatter_renders(self):
        text = scatter_plot([1, 2, 3], [1, 4, 9], title="squares")
        assert "squares" in text
        assert text.count("o") == 3

    def test_scatter_log_axis(self):
        text = scatter_plot([1, 10, 100], [1, 2, 3], log_x=True)
        assert "(log)" in text

    def test_scatter_custom_markers(self):
        text = scatter_plot([1, 2], [1, 2], markers=["A", "B"])
        assert "A" in text and "B" in text

    def test_scatter_rejects_mismatched(self):
        with pytest.raises(FTDLError):
            scatter_plot([1, 2], [1])

    def test_scatter_log_rejects_nonpositive(self):
        with pytest.raises(FTDLError):
            scatter_plot([0, 1], [1, 2], log_x=True)

    def test_line_plot_legend(self):
        text = line_plot([1, 2, 3], {"ftdl": [650, 655, 652], "sys": [400, 300, 200]})
        assert "o=ftdl" in text and "x=sys" in text

    def test_line_plot_rejects_ragged(self):
        with pytest.raises(FTDLError):
            line_plot([1, 2], {"a": [1]})
