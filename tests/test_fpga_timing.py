"""Post-P&R timing estimation — the substance of Fig. 6."""

import pytest

from repro.fpga.devices import get_device
from repro.fpga.placement import place_overlay, place_systolic
from repro.fpga.timing import TimingModel

VU125_SCALE_UP = [
    (12, 1, 5), (12, 1, 10), (12, 1, 20), (12, 2, 20),
    (12, 3, 20), (12, 4, 20), (12, 5, 20),
]
VIRTEX_SCALE_UP = [
    (10, 1, 4), (10, 1, 8), (10, 1, 16), (10, 2, 16),
    (10, 4, 16), (10, 6, 16), (10, 7, 16),
]


@pytest.fixture
def vu125():
    return get_device("vu125")


@pytest.fixture
def virtex():
    return get_device("7vx330t")


class TestOverlayTiming:
    def test_vu125_stabilizes_above_650(self, vu125):
        """Fig. 6(b): fmax > 650 MHz at every scale point."""
        model = TimingModel(vu125)
        for cfg in VU125_SCALE_UP:
            report = model.report(place_overlay(vu125, *cfg))
            assert report.fmax_mhz > 650.0, cfg

    def test_virtex_stabilizes_above_620(self, virtex):
        """Fig. 6(a): fmax > 620 MHz at every scale point."""
        model = TimingModel(virtex)
        for cfg in VIRTEX_SCALE_UP:
            report = model.report(place_overlay(virtex, *cfg))
            assert report.fmax_mhz > 620.0, cfg

    def test_fmax_fraction_exceeds_88_percent(self, vu125, virtex):
        """The abstract's claim: >= 88 % of theoretical DSP fmax."""
        for device, configs in ((vu125, VU125_SCALE_UP), (virtex, VIRTEX_SCALE_UP)):
            model = TimingModel(device)
            for cfg in configs:
                report = model.report(place_overlay(device, *cfg))
                assert report.fmax_fraction >= 0.88, (device.name, cfg)

    def test_scale_up_is_flat(self, vu125):
        """Largest minus smallest fmax across the sweep stays within 5 %."""
        model = TimingModel(vu125)
        fmaxes = [
            model.report(place_overlay(vu125, *cfg)).fmax_mhz
            for cfg in VU125_SCALE_UP
        ]
        assert (max(fmaxes) - min(fmaxes)) / max(fmaxes) < 0.05

    def test_report_is_deterministic(self, vu125):
        model = TimingModel(vu125)
        a = model.report(place_overlay(vu125, 12, 5, 20))
        b = model.report(place_overlay(vu125, 12, 5, 20))
        assert a.fmax_mhz == b.fmax_mhz

    def test_paths_sorted_worst_first(self, vu125):
        report = TimingModel(vu125).report(place_overlay(vu125, 12, 5, 20))
        limits = [p.clk_h_limit_mhz for p in report.paths]
        assert limits == sorted(limits)
        assert report.critical_path is report.paths[0]

    def test_never_exceeds_dsp_cap(self, vu125):
        report = TimingModel(vu125).report(place_overlay(vu125, 12, 1, 5))
        assert report.fmax_mhz <= vu125.dsp.fmax_mhz

    def test_without_double_pump_bram_can_bind(self, vu125):
        """Single-clock mode halves the BRAM budget; fmax drops to <= 528."""
        placement = place_overlay(vu125, 12, 5, 20)
        single = TimingModel(vu125).report(placement, double_pump=False)
        assert single.fmax_mhz <= vu125.bram.fmax_mhz


class TestSystolicTiming:
    def test_fmax_degrades_with_scale(self, vu125):
        """The motivating mismatch: boundary-fed arrays slow down as they
        grow, ending below the 250 MHz the paper attributes to prior art."""
        model = TimingModel(vu125)
        sizes = [(8, 8), (16, 16), (24, 24), (32, 32)]
        fmaxes = [
            model.report(place_systolic(vu125, r, c)).fmax_mhz
            for r, c in sizes
        ]
        assert all(a >= b for a, b in zip(fmaxes, fmaxes[1:]))
        assert fmaxes[-1] < 250.0

    def test_large_systolic_much_slower_than_overlay(self, vu125):
        model = TimingModel(vu125)
        overlay = model.report(place_overlay(vu125, 12, 5, 20))
        systolic = model.report(place_systolic(vu125, 34, 34))
        assert overlay.fmax_mhz > 2.5 * systolic.fmax_mhz
