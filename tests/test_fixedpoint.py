"""Fixed-point arithmetic helpers (datapath semantics)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint import (
    INT16_MAX,
    INT16_MIN,
    quantize_symmetric,
    to_int16,
    wrap48,
)


class TestToInt16:
    def test_saturates_high(self):
        assert to_int16(np.array([40000])) == INT16_MAX

    def test_saturates_low(self):
        assert to_int16(np.array([-40000])) == INT16_MIN

    def test_passes_in_range(self):
        values = np.array([-32768, -1, 0, 1, 32767])
        assert np.array_equal(to_int16(values), values.astype(np.int16))


class TestWrap48:
    def test_identity_in_range(self):
        assert wrap48(123456789) == 123456789
        assert wrap48(-(1 << 47)) == -(1 << 47)

    def test_wraps_positive_overflow(self):
        assert wrap48(1 << 47) == -(1 << 47)

    def test_wraps_negative_overflow(self):
        assert wrap48(-(1 << 47) - 1) == (1 << 47) - 1

    def test_array_form(self):
        values = np.array([(1 << 47), 5, -(1 << 47) - 1], dtype=object)
        wrapped = wrap48(values)
        assert list(wrapped) == [-(1 << 47), 5, (1 << 47) - 1]

    @given(st.integers(-(1 << 60), 1 << 60))
    def test_result_always_in_range(self, value):
        wrapped = wrap48(value)
        assert -(1 << 47) <= wrapped < (1 << 47)

    @given(st.integers(-(1 << 60), 1 << 60), st.integers(-(1 << 60), 1 << 60))
    def test_wrap_is_homomorphic_under_addition(self, a, b):
        """wrap(a + b) == wrap(wrap(a) + wrap(b)) — accumulation order
        cannot change the wrapped result (cascade correctness)."""
        assert wrap48(a + b) == wrap48(wrap48(a) + wrap48(b))


class TestQuantize:
    def test_round_trip_scale(self):
        real = np.array([-1.0, 0.5, 1.0])
        q, scale = quantize_symmetric(real)
        assert np.allclose(q * scale, real, atol=scale)

    def test_zero_tensor(self):
        q, scale = quantize_symmetric(np.zeros(4))
        assert scale == 1.0
        assert not q.any()

    def test_peak_maps_to_qmax(self):
        q, _ = quantize_symmetric(np.array([2.0, -4.0]))
        assert q.min() == -32767

    def test_bits_bounds(self):
        with pytest.raises(ValueError):
            quantize_symmetric(np.ones(2), n_bits=1)
        with pytest.raises(ValueError):
            quantize_symmetric(np.ones(2), n_bits=17)

    @given(st.integers(2, 16))
    def test_quantized_range(self, bits):
        rng = np.random.default_rng(bits)
        real = rng.normal(size=32)
        q, _ = quantize_symmetric(real, n_bits=bits)
        qmax = (1 << (bits - 1)) - 1
        assert int(np.abs(q).max()) <= qmax
