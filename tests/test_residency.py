"""WBUF residency planning (the end-to-end purpose of Objective 2)."""

import dataclasses

import pytest

from repro.compiler.residency import plan_residency
from repro.errors import ScheduleError
from repro.overlay.config import OverlayConfig
from repro.units import BYTES_PER_WORD
from repro.workloads.layers import ConvLayer, MatMulLayer
from repro.workloads.network import Network


@pytest.fixture
def config():
    return OverlayConfig(
        d1=4, d2=2, d3=2, s_actbuf_words=128,
        s_wbuf_words=256, s_psumbuf_words=2048,
    )


def _small_net() -> Network:
    return Network(
        name="small", application="test",
        layers=(
            ConvLayer("c1", 4, 8, in_h=8, in_w=8, kernel_h=3, kernel_w=3,
                      padding=1),
            ConvLayer("c2", 8, 8, in_h=8, in_w=8, kernel_h=3, kernel_w=3,
                      padding=1),
            MatMulLayer("fc", in_features=512, out_features=16),
        ),
    )


def _tied_net() -> Network:
    return Network(
        name="tied", application="test",
        layers=tuple(
            MatMulLayer(f"t{i}", 32, 32, weight_group="shared")
            for i in range(4)
        ),
    )


class TestPlanResidency:
    def test_budget_respected(self, config):
        plan = plan_residency(_small_net(), config)
        assert plan.resident_words <= plan.budget_words

    def test_everything_resident_when_budget_allows(self, config):
        # 16 TPEs x 256 words = 4096 words; the small net's weights with
        # Objective 2 schedules should mostly fit.
        plan = plan_residency(_small_net(), config)
        assert plan.n_resident >= 2

    def test_nothing_resident_on_tiny_budget(self):
        tiny = OverlayConfig(
            d1=1, d2=1, d3=1, s_actbuf_words=64,
            s_wbuf_words=16, s_psumbuf_words=128,
        )
        plan = plan_residency(_small_net(), tiny)
        assert plan.n_resident == 0
        assert plan.streamed_bytes_per_frame > 0

    def test_residency_reduces_cycles(self, config):
        plan = plan_residency(_small_net(), config)
        streamed_total = sum(l.schedule.cycles for l in plan.layers)
        assert plan.total_cycles() <= streamed_total
        assert plan.fps() >= config.clk_h_mhz * 1e6 / streamed_total

    def test_streamed_bytes_accounting(self, config):
        plan = plan_residency(_small_net(), config)
        expected = BYTES_PER_WORD * sum(
            l.stored_words for l in plan.layers if not l.resident
        )
        assert plan.streamed_bytes_per_frame == expected

    def test_tied_group_single_charge(self, config):
        """Four weight-tied layers must be charged once and decided
        together."""
        plan = plan_residency(_tied_net(), config)
        decisions = {l.resident for l in plan.layers}
        assert len(decisions) == 1  # all the same
        if plan.layers[0].resident:
            # One copy of 32x32 weights, not four.
            assert plan.resident_words == sum(
                l.stored_words for l in plan.layers if l.resident
            )
            assert plan.layers[0].stored_words <= plan.budget_words

    def test_global_residency_flag_rejected(self, config):
        resident = dataclasses.replace(config, weights_resident=True)
        with pytest.raises(ScheduleError, match="streaming config"):
            plan_residency(_small_net(), resident)

    def test_balance_objective_packs_more_than_performance(self):
        """The Objective-2 story: lower duplication -> more layers
        resident at the same budget (or at worst the same)."""
        config = OverlayConfig(
            d1=4, d2=2, d3=2, s_actbuf_words=128,
            s_wbuf_words=64, s_psumbuf_words=2048,
        )
        net = _small_net()
        balance = plan_residency(net, config, objective="balance")
        performance = plan_residency(net, config, objective="performance")
        assert balance.n_resident >= performance.n_resident
