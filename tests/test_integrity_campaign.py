"""SDC campaign acceptance: detection, recovery, and overhead agreement.

The headline numbers of the integrity PR, pinned as tests:

* a seeded campaign of >= 200 bit-flips detects **every** corrupting
  single-element upset, and under detect+re-execute the served outputs
  match the fault-free golden results bit for bit (``n_served_corrupt
  == 0``);
* every counter identity of :class:`SdcCampaignReport` holds exactly;
* the compiler model's ABFT checksum-work term agrees exactly with the
  MACCs the functional kernels measure, per layer, and the per-tile
  bound behaves monotonically on the paper's D1=12, D2=5, D3=20 grid.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler.model import abft_overhead
from repro.compiler.search import schedule_layer, schedule_network
from repro.errors import FaultError
from repro.integrity import IntegrityPolicy, run_sdc_campaign
from repro.integrity.abft import abft_layer_output
from repro.overlay.config import PAPER_EXAMPLE_CONFIG
from repro.sim.functional import random_layer_operands
from repro.trace.metrics import MetricsRegistry
from repro.workloads.layers import ConvLayer, MatMulLayer
from repro.workloads.models import build_smallcnn

CAMPAIGN_LAYER = ConvLayer(
    "victim", in_channels=6, out_channels=8, in_h=10, in_w=10,
    kernel_h=3, kernel_w=3, stride=1, padding=1,
)


class TestCampaignAcceptance:
    @pytest.fixture(scope="class")
    def report(self):
        return run_sdc_campaign(
            CAMPAIGN_LAYER, policy=IntegrityPolicy.DETECT_REEXECUTE,
            trials=200, seed=7,
        )

    def test_every_corrupting_flip_detected(self, report):
        assert report.n_injected == 200
        assert report.n_missed == 0
        assert report.detection_rate == 1.0

    def test_reexecution_serves_golden_bit_for_bit(self, report):
        # n_served_corrupt counts any served output that differs from
        # the fault-free golden result — zero means every re-executed
        # result matched bit for bit.
        assert report.n_served_corrupt == 0
        assert report.n_reexecuted == report.n_detected

    def test_counter_identities(self, report):
        assert report.n_injected == report.n_benign + report.n_corrupting
        assert report.n_corrupting == report.n_detected + report.n_missed
        assert report.n_detected == (
            report.n_corrected + report.n_reexecuted + report.n_dropped
        )
        assert sum(report.by_site.values()) == report.n_injected
        assert sum(report.detected_by_site.values()) == report.n_detected

    def test_campaign_is_seed_deterministic(self, report):
        again = run_sdc_campaign(
            CAMPAIGN_LAYER, policy="detect-reexecute", trials=200, seed=7,
        )
        assert again == report
        moved = run_sdc_campaign(
            CAMPAIGN_LAYER, policy="detect-reexecute", trials=50, seed=8,
        )
        assert moved.by_site != dict(
            list(report.by_site.items())
        ) or moved.n_detected != report.n_detected

    def test_off_policy_serves_corruption(self):
        off = run_sdc_campaign(CAMPAIGN_LAYER, policy="off", trials=50,
                               seed=3)
        assert off.n_detected == 0
        assert off.n_served_corrupt == off.n_corrupting > 0

    def test_correct_policy_corrects_psum_strikes(self):
        corrected = run_sdc_campaign(
            CAMPAIGN_LAYER, policy="detect-correct", trials=60, seed=5,
            site="psum",
        )
        assert corrected.n_corrected == corrected.n_detected == 60
        assert corrected.n_reexecuted == 0
        assert corrected.n_served_corrupt == 0

    def test_detect_policy_drops(self):
        detect = run_sdc_campaign(
            CAMPAIGN_LAYER, policy="detect", trials=40, seed=6,
        )
        assert detect.n_dropped == detect.n_detected
        assert detect.n_served_corrupt == 0

    def test_metrics_and_describe(self):
        registry = MetricsRegistry()
        report = run_sdc_campaign(
            CAMPAIGN_LAYER, policy="detect-correct", trials=20, seed=1,
            metrics=registry,
        )
        text = report.describe()
        assert "detection" in text and "corrected" in text
        from repro.trace import prometheus_text
        rendered = prometheus_text(registry)
        assert "sdc_injected" in rendered and "sdc_detected" in rendered

    def test_invalid_args(self):
        with pytest.raises(FaultError):
            run_sdc_campaign(CAMPAIGN_LAYER, trials=0)
        with pytest.raises(FaultError):
            run_sdc_campaign(CAMPAIGN_LAYER, trials=5, site="cache")


class TestModelMeasuredAgreement:
    """Compiler-model ABFT overhead vs functional-kernel measurement."""

    @pytest.mark.parametrize("layer", [
        MatMulLayer("fc", in_features=32, out_features=10, batch=4),
        CAMPAIGN_LAYER,
        ConvLayer("dw", in_channels=8, out_channels=8, in_h=8, in_w=8,
                  kernel_h=3, kernel_w=3, stride=1, padding=1, groups=8),
    ], ids=lambda l: l.name)
    def test_checksum_work_agrees_exactly(self, layer):
        model = abft_overhead(layer)
        rng = np.random.default_rng(11)
        measured = abft_layer_output(layer, *random_layer_operands(layer, rng))
        assert model.base_maccs == measured.data_maccs == layer.maccs
        assert model.checksum_maccs == measured.checksum_maccs
        assert model.overhead_fraction == pytest.approx(
            measured.overhead_fraction
        )

    def test_overhead_closed_form(self):
        layer = MatMulLayer("cf", in_features=9, out_features=16, batch=8)
        model = abft_overhead(layer)
        assert model.overhead_fraction == pytest.approx(
            1 / 16 + 1 / 8 + 1 / (16 * 8)
        )
        assert 0.0 < model.throughput_factor < 1.0
        assert model.protected_maccs == model.base_maccs + model.checksum_maccs

    def test_tile_bound_on_paper_grid(self):
        # Per-tile encoding can only cost more than whole-layer encoding
        # (smaller rows/cols per checksum), and the scheduled SmallCNN
        # layers on the paper's 12x5x20 grid must respect the bound.
        network = build_smallcnn()
        schedules = schedule_network(network, PAPER_EXAMPLE_CONFIG)
        assert schedules
        for schedule in schedules:
            whole = abft_overhead(schedule.layer)
            tiled = abft_overhead(schedule.layer, schedule.mapping)
            assert tiled.tile_rows <= whole.out_rows
            assert tiled.tile_cols <= whole.out_cols
            assert tiled.tile_bound >= whole.overhead_fraction - 1e-12

    def test_tile_dims_follow_mapping(self):
        layer = MatMulLayer("map", in_features=64, out_features=48, batch=8)
        schedule = schedule_layer(layer, PAPER_EXAMPLE_CONFIG)
        tiled = abft_overhead(layer, schedule.mapping)
        tile = schedule.mapping.tile(("D3", "D2", "D1", "L", "T"))
        assert tiled.tile_rows == min(48, tile["N"])
        assert tiled.tile_cols == min(8, tile["P"])

    def test_rejects_ewop(self):
        from repro.workloads.layers import EwopLayer
        with pytest.raises(TypeError):
            abft_overhead(EwopLayer("relu", op="relu", n_elements=10))
