"""SDC CLI: golden output, determinism, argument validation."""

from pathlib import Path

from repro.tools.sdc import build_parser, main

GOLDEN = Path(__file__).parent / "golden" / "sdc_smoke.txt"

#: The exact invocation the golden file was generated with (also run by
#: the CI sdc-smoke job).
GOLDEN_ARGS = ["--seed", "7"]

#: Cheap settings for the non-golden CLI tests.
FAST_ARGS = [
    "--trials", "5", "--requests", "40", "--rate", "1200",
    "--tpe-fault-rate", "10", "--bitflip-rate", "20",
]


class TestGolden:
    def test_matches_checked_in_golden(self, capsys):
        assert main(GOLDEN_ARGS) == 0
        out = capsys.readouterr().out
        assert out == GOLDEN.read_text()

    def test_bit_identical_across_runs(self, capsys):
        assert main(GOLDEN_ARGS) == 0
        first = capsys.readouterr().out
        assert main(GOLDEN_ARGS) == 0
        assert capsys.readouterr().out == first

    def test_seed_changes_report(self, capsys):
        assert main(["--seed", "8"]) == 0
        assert capsys.readouterr().out != GOLDEN.read_text()


class TestCliSurface:
    def test_reports_all_three_sections(self, capsys):
        assert main(FAST_ARGS + ["--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "compiler model vs measured" in out
        assert "kernel campaign" in out
        assert "serving integration" in out
        assert "counters reconcile" in out

    def test_policy_subset_respected(self, capsys):
        assert main(FAST_ARGS + ["--policies", "detect"]) == 0
        out = capsys.readouterr().out
        assert "policy detect " in out
        assert "detect-reexecute" not in out

    def test_bad_grid_is_error(self, capsys):
        assert main(["--grid", "banana"]) == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_policy_is_error(self, capsys):
        assert main(["--policies", "paranoid"]) == 1
        assert "paranoid" in capsys.readouterr().err

    def test_empty_policies_is_error(self, capsys):
        assert main(["--policies", ","]) == 1
        assert "no integrity policies" in capsys.readouterr().err

    def test_nonpositive_trials_is_error(self, capsys):
        assert main(["--trials", "0"]) == 1
        assert "--trials" in capsys.readouterr().err

    def test_defaults_parse(self):
        args = build_parser().parse_args([])
        assert args.seed == 0
        assert args.trials == 100
        assert args.grid is None
        assert args.serving_grid == "3,2,2"
        assert args.policies == "off,detect,detect-reexecute,detect-correct"
