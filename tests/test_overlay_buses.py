"""Bus occupancy model and controller phase expansion."""

import pytest

from repro.errors import SimulationError
from repro.overlay.buses import BusModel
from repro.overlay.controller import Controller
from repro.overlay.isa import Instruction, OpKind


class TestBusModel:
    def test_transfer_duration(self):
        bus = BusModel("b", words_per_cycle=2.0)
        assert bus.transfer(0, 10) == 5
        assert bus.busy_cycles == 5
        assert bus.words_moved == 10

    def test_serialization(self):
        bus = BusModel("b", words_per_cycle=1.0)
        first = bus.transfer(0, 4)
        second = bus.transfer(0, 4)  # requested at 0, queued behind first
        assert first == 4
        assert second == 8

    def test_idle_gap_respected(self):
        bus = BusModel("b", words_per_cycle=1.0)
        bus.transfer(0, 2)
        assert bus.transfer(10, 3) == 13

    def test_zero_words_is_free(self):
        bus = BusModel("b", words_per_cycle=1.0)
        assert bus.transfer(5, 0) == 5
        assert bus.busy_cycles == 0

    def test_fractional_rate_rounds_up(self):
        bus = BusModel("b", words_per_cycle=1.5)
        assert bus.transfer(0, 4) == 3  # ceil(4 / 1.5)

    def test_negative_words_rejected(self):
        bus = BusModel("b", words_per_cycle=1.0)
        with pytest.raises(SimulationError):
            bus.transfer(0, -1)

    def test_zero_bandwidth_rejected(self):
        bus = BusModel("b", words_per_cycle=0.0)
        with pytest.raises(SimulationError, match="no bandwidth"):
            bus.transfer(0, 1)

    def test_utilization(self):
        bus = BusModel("b", words_per_cycle=1.0)
        bus.transfer(0, 25)
        assert bus.utilization(100) == pytest.approx(0.25)
        assert bus.utilization(0) == 0.0


class TestController:
    def test_phase_stream_matches_listing1(self):
        """List 1: psum update per X, act update + T compute per L."""
        inst = Instruction(
            op=OpKind.COMPUTE, x=2, l=3, t=7,
            act_tile_words=10, psum_tile_words=4,
        )
        phases = list(Controller(inst).phases())
        kinds = [p.kind for p in phases]
        expected_per_x = ["psum_update"] + ["act_update", "compute"] * 3
        assert kinds == expected_per_x * 2

    def test_compute_phase_durations(self):
        inst = Instruction(op=OpKind.COMPUTE, x=1, l=2, t=9, act_tile_words=5)
        computes = [p for p in Controller(inst).phases() if p.kind == "compute"]
        assert all(p.cycles == 9 for p in computes)
        assert len(computes) == 2

    def test_update_words(self):
        inst = Instruction(
            op=OpKind.COMPUTE, x=1, l=1, t=1,
            act_tile_words=11, psum_tile_words=22,
        )
        phases = list(Controller(inst).phases())
        assert phases[0].words == 22  # psum update
        assert phases[1].words == 11  # act update

    def test_non_compute_rejected(self):
        controller = Controller(Instruction(op=OpKind.LOAD_WEIGHT, t=16))
        with pytest.raises(SimulationError, match="COMPUTE"):
            list(controller.phases())

    def test_total_compute_cycles(self):
        inst = Instruction(op=OpKind.COMPUTE, x=3, l=4, t=5)
        total = sum(
            p.cycles for p in Controller(inst).phases() if p.kind == "compute"
        )
        assert total == inst.total_macc_cycles
