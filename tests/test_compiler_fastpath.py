"""The fast compile path: memo, persistent store, parallel scheduling.

The contract under test everywhere here is *byte-for-byte identity*: the
incremental temporal memo, the on-disk schedule store, and the
multiprocessing fan-out are pure accelerations — every schedule, every
search counter, and every trace-visible step charge must be exactly what
the plain sequential search produces.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.compiler import (
    ScheduleSearch,
    TemporalMemo,
    ceil_tile_candidates,
    parallel_schedule_network,
    schedule_layer,
    schedule_network,
)
from repro.compiler.cache import ScheduleCache
from repro.compiler.parallel import _fan_out, default_workers
from repro.compiler.persist import PersistentScheduleStore, store_key
from repro.errors import ScheduleError
from repro.overlay.config import OverlayConfig
from repro.workloads.layers import ConvLayer, MatMulLayer
from repro.workloads.models import build_smallcnn
from repro.workloads.network import Network

CONFIGS = [
    OverlayConfig(3, 2, 2),
    OverlayConfig(4, 2, 3),
    OverlayConfig(2, 2, 2, double_pump=False),
]

LAYERS = [
    ConvLayer("c_pad", in_channels=4, out_channels=8, in_h=14, in_w=14,
              kernel_h=3, kernel_w=3, stride=1, padding=1),
    ConvLayer("c_stride", in_channels=8, out_channels=6, in_h=15, in_w=15,
              kernel_h=3, kernel_w=3, stride=2, padding=0),
    ConvLayer("c_group", in_channels=8, out_channels=8, in_h=10, in_w=10,
              kernel_h=3, kernel_w=3, stride=1, padding=1, groups=4),
    MatMulLayer("mm_fc", in_features=64, out_features=32, batch=1),
    MatMulLayer("mm_b", in_features=48, out_features=24, batch=8),
]


def _naive_lattice(size: int, cap: int) -> list[int]:
    """The definition ``ceil_tile_candidates`` must reproduce."""
    tiles = {1}
    for m in range(1, size + 1):
        tile = math.ceil(size / m)
        if tile <= cap:
            tiles.add(tile)
    return sorted(tiles)


class TestCeilTileMemo:
    def test_matches_naive_lattice(self):
        for size in (1, 2, 3, 7, 12, 48, 97, 224, 1000):
            for cap in (1, 2, 5, size // 2 + 1, size, size + 7):
                assert ceil_tile_candidates(size, cap) == \
                    _naive_lattice(size, cap), (size, cap)

    def test_seeded_property_sweep(self):
        rng = np.random.default_rng(1234)
        for _ in range(200):
            size = int(rng.integers(1, 600))
            cap = int(rng.integers(1, 700))
            assert ceil_tile_candidates(size, cap) == \
                _naive_lattice(size, cap), (size, cap)

    def test_returns_fresh_lists(self):
        first = ceil_tile_candidates(12, 5)
        first.append(-1)
        assert ceil_tile_candidates(12, 5) == _naive_lattice(12, 5)


class TestTemporalMemo:
    def test_counter_replay_is_invariant(self):
        """Shared-memo searches report the same counters as bare ones."""
        config = OverlayConfig(3, 2, 2)
        memo = TemporalMemo()
        for layer in LAYERS:
            bare = ScheduleSearch(layer, config, top_k=1)
            bare_best = bare.run()[0]
            for round_no in range(2):  # cold then warm
                shared = ScheduleSearch(layer, config, top_k=1,
                                        temporal_memo=memo)
                best = shared.run()[0]
                assert best.mapping == bare_best.mapping
                assert best.estimate == bare_best.estimate
                assert shared.steps == bare.steps, (layer.name, round_no)
                assert shared.pruned_by_capacity == bare.pruned_by_capacity
                assert shared.candidates_evaluated == \
                    bare.candidates_evaluated

    def test_warm_memo_hits(self):
        config = OverlayConfig(3, 2, 2)
        memo = TemporalMemo()
        layer = LAYERS[0]
        ScheduleSearch(layer, config, top_k=1, temporal_memo=memo).run()
        warm = ScheduleSearch(layer, config, top_k=1, temporal_memo=memo)
        warm.run()
        assert warm.shared_memo_hits > 0
        assert memo.hits > 0

    def test_batch_perturbation_reuses_memo(self):
        """Changing only the MM batch keeps most temporal work cached."""
        config = OverlayConfig(3, 2, 2)
        memo = TemporalMemo()
        for batch in (1, 2, 4, 8):
            layer = MatMulLayer("mm", in_features=64, out_features=32,
                                batch=batch)
            ScheduleSearch(layer, config, top_k=1,
                           temporal_memo=memo).run()
        assert memo.hits > 0

    def test_eviction_bound(self):
        memo = TemporalMemo(max_entries=2)
        for i in range(5):
            memo.store(("ctx",), (i,), combos=(), steps=1, pruned=0)
        assert len(memo) == 2
        assert memo.evictions == 3
        with pytest.raises(ScheduleError):
            TemporalMemo(max_entries=0)


class TestPersistentStore:
    def test_round_trip_is_identical(self, tmp_path):
        store = PersistentScheduleStore(tmp_path)
        config = OverlayConfig(3, 2, 2)
        for layer in LAYERS:
            search = ScheduleSearch(layer, config, top_k=1)
            schedule = search.run()[0]
            store.save(schedule, steps=search.steps)
            loaded = store.load(layer, config, "performance")
            assert loaded is not None
            reloaded, steps = loaded
            assert reloaded.mapping == schedule.mapping
            assert reloaded.estimate == schedule.estimate
            assert steps == search.steps

    def test_miss_on_unknown_layer(self, tmp_path):
        store = PersistentScheduleStore(tmp_path)
        assert store.load(LAYERS[0], OverlayConfig(3, 2, 2),
                          "performance") is None
        assert store.misses == 1

    def test_config_and_objective_isolate_entries(self, tmp_path):
        """A fault-masked (smaller) grid never reads the full grid's entry."""
        store = PersistentScheduleStore(tmp_path)
        layer = LAYERS[0]
        full = OverlayConfig(3, 2, 2)
        masked = OverlayConfig(3, 2, 1)
        schedule = schedule_layer(layer, full)
        store.save(schedule, steps=10)
        assert store.load(layer, masked, "performance") is None
        assert store.load(layer, full, "balance") is None
        assert store.load(layer, full, "performance") is not None
        assert store_key(layer, full, "performance") != \
            store_key(layer, masked, "performance")

    @pytest.mark.parametrize("tamper", [
        lambda text: "not json at all",
        lambda text: text[: len(text) // 2],
        lambda text: json.dumps({**json.loads(text), "version": 999}),
        lambda text: json.dumps(
            {**json.loads(text),
             "trips": {k: {n: 1 for n in v}
                       for k, v in json.loads(text)["trips"].items()}}
        ),
        lambda text: json.dumps(
            {**json.loads(text), "loop_names": ["bogus"]}),
        lambda text: json.dumps({**json.loads(text), "steps": -5}),
    ], ids=["garbage", "truncated", "bad-version", "infeasible-trips",
            "bad-loops", "negative-steps"])
    def test_corrupt_entries_fall_back_to_search(self, tmp_path, tamper):
        store = PersistentScheduleStore(tmp_path)
        config = OverlayConfig(3, 2, 2)
        layer = LAYERS[0]
        reference = schedule_layer(layer, config)
        store.save(reference, steps=3)
        path = tmp_path / f"{store_key(layer, config, 'performance')}.json"
        path.write_text(tamper(path.read_text()))

        cache = ScheduleCache(config, store=PersistentScheduleStore(tmp_path))
        schedule = cache.schedule(layer)
        assert schedule.mapping == reference.mapping
        stats = cache.stats()
        assert stats.persistent_corrupt == 1
        assert stats.persistent_hits == 0
        # the fresh search overwrote the corrupt entry
        assert cache.store.load(layer, config, "performance") is not None

    def test_infeasible_trips_detected_not_trusted(self, tmp_path):
        """A tampered mapping is rejected by re-validation, not loaded."""
        store = PersistentScheduleStore(tmp_path)
        config = OverlayConfig(3, 2, 2)
        layer = LAYERS[3]
        schedule = schedule_layer(layer, config)
        store.save(schedule, steps=1)
        path = tmp_path / f"{store_key(layer, config, 'performance')}.json"
        payload = json.loads(path.read_text())
        payload["trips"]["T"] = {n: 10_000 for n in payload["loop_names"]}
        path.write_text(json.dumps(payload))
        assert store.load(layer, config, "performance") is None
        assert store.corrupt == 1


def _fuzz_cases(rng: np.random.Generator, n: int):
    """Seeded (layer, config) pairs spanning batches and masked grids."""
    for _ in range(n):
        config = CONFIGS[int(rng.integers(len(CONFIGS)))]
        draw = int(rng.integers(3))
        if draw == 0:
            layer = MatMulLayer(
                "mm",
                in_features=int(rng.integers(8, 96)),
                out_features=int(rng.integers(4, 64)),
                batch=int(2 ** rng.integers(0, 4)),
            )
        elif draw == 1:
            # Attention-style streamed matmul: cache keys must cover it.
            layer = MatMulLayer(
                "mm_streamed",
                in_features=int(rng.integers(4, 32)),
                out_features=int(rng.integers(4, 32)),
                batch=int(rng.integers(1, 12)),
                weight_source="producer",
            )
        else:
            layer = ConvLayer(
                "conv",
                in_channels=int(rng.integers(2, 10)),
                out_channels=int(rng.integers(2, 12)),
                in_h=int(rng.integers(6, 20)),
                in_w=int(rng.integers(6, 20)),
                kernel_h=3, kernel_w=3,
                stride=int(rng.integers(1, 3)),
                padding=int(rng.integers(0, 2)),
            )
        yield layer, config


class TestCacheEquivalenceFuzz:
    def test_all_paths_produce_identical_schedules(self, tmp_path):
        """searched == memory-cached == disk-cached == parallel-searched."""
        rng = np.random.default_rng(20260807)
        for case, (layer, config) in enumerate(_fuzz_cases(rng, 12)):
            try:
                direct = schedule_layer(layer, config)
            except ScheduleError:
                continue  # infeasible draw: all paths must agree it is

            root = tmp_path / f"case{case}"
            cold = ScheduleCache(config, store=PersistentScheduleStore(root))
            first = cold.schedule(layer)
            second = cold.schedule(layer)  # memory hit
            warm = ScheduleCache(config, store=PersistentScheduleStore(root))
            from_disk = warm.schedule(layer)  # persistent hit

            network = Network(
                name="fuzz", application="test",
                layers=(layer, layer.__class__(**{
                    **{f.name: getattr(layer, f.name)
                       for f in layer.__dataclass_fields__.values()},
                    "name": "twin",
                })),
            )
            par = parallel_schedule_network(network, config, max_workers=2)

            for other in (first, second, from_disk, par[0], par[1]):
                assert other.mapping == direct.mapping, (case, layer)
                assert other.estimate == direct.estimate, (case, layer)
            assert warm.stats().persistent_hits == 1

    def test_network_paths_identical(self, tmp_path):
        network = build_smallcnn()
        config = OverlayConfig(3, 2, 2)
        sequential = schedule_network(network, config)
        parallel = parallel_schedule_network(network, config, max_workers=2)
        store = PersistentScheduleStore(tmp_path)
        disk_cold = ScheduleCache(config, store=store)
        cold = [disk_cold.schedule(l) for l in network.accelerated_layers()]
        disk_warm = ScheduleCache(
            config, store=PersistentScheduleStore(tmp_path))
        warm = [disk_warm.schedule(l) for l in network.accelerated_layers()]
        for seq, par, c, w in zip(sequential, parallel, cold, warm):
            assert seq.mapping == par.mapping == c.mapping == w.mapping
            assert seq.estimate == par.estimate == c.estimate == w.estimate
        stats = disk_warm.stats()
        assert stats.persistent_hits == stats.misses > 0
        assert stats.compiles == 0  # the warm start never searched

    def test_transformer_network_paths_identical(self, tmp_path):
        """The fast paths must agree on a transformer network too: host
        layers skipped, weight-streaming matmuls keyed like any MM."""
        from repro.workloads.models import TransformerConfig, build_transformer
        network = build_transformer(TransformerConfig(
            d_model=32, n_heads=2, seq_len=8, d_ff=64, n_blocks=1,
        ))
        config = OverlayConfig(3, 2, 2)
        sequential = schedule_network(network, config)
        parallel = parallel_schedule_network(network, config, max_workers=2)
        disk_cold = ScheduleCache(
            config, store=PersistentScheduleStore(tmp_path))
        cold = [disk_cold.schedule(l) for l in network.accelerated_layers()]
        disk_warm = ScheduleCache(
            config, store=PersistentScheduleStore(tmp_path))
        warm = [disk_warm.schedule(l) for l in network.accelerated_layers()]
        assert len(sequential) == len(network.accelerated_layers())
        for seq, par, c, w in zip(sequential, parallel, cold, warm):
            assert seq.mapping == par.mapping == c.mapping == w.mapping
            assert seq.estimate == par.estimate == c.estimate == w.estimate
        assert disk_warm.stats().compiles == 0


class TestParallelScheduling:
    def test_workers_flag_on_schedule_network(self):
        network = build_smallcnn()
        config = OverlayConfig(3, 2, 2)
        assert [s.mapping for s in schedule_network(network, config)] == \
            [s.mapping for s in schedule_network(network, config, workers=2)]

    def test_single_worker_falls_back_in_process(self):
        layer = LAYERS[3]
        config = OverlayConfig(3, 2, 2)
        results = _fan_out([(layer, config, "performance")], max_workers=1)
        assert results[0][0].mapping == \
            schedule_layer(layer, config).mapping

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_step_charges_replayed_into_cache(self):
        network = build_smallcnn()
        config = OverlayConfig(3, 2, 2)
        seq_cache = ScheduleCache(config)
        for layer in network.accelerated_layers():
            seq_cache.schedule(layer)
        par_cache = ScheduleCache(config)
        parallel_schedule_network(network, config, cache=par_cache,
                                  max_workers=2)
        assert par_cache._step_base == seq_cache._step_base

    def test_adopt_rejects_foreign_schedules(self):
        config = OverlayConfig(3, 2, 2)
        other = OverlayConfig(4, 2, 3)
        schedule = schedule_layer(LAYERS[3], other)
        cache = ScheduleCache(config)
        with pytest.raises(ScheduleError):
            cache.adopt(LAYERS[3], schedule)


class TestDescribeSurface:
    def test_describe_mentions_disk_and_memo(self, tmp_path):
        config = OverlayConfig(3, 2, 2)
        cache = ScheduleCache(config,
                              store=PersistentScheduleStore(tmp_path))
        cache.schedule(LAYERS[0])
        cache.schedule(LAYERS[0])
        text = cache.describe()
        assert "disk" in text and "stores" in text
        assert "temporal memo" in text

    def test_describe_quiet_without_store(self):
        cache = ScheduleCache(OverlayConfig(3, 2, 2))
        assert "disk" not in cache.stats().describe()
