"""Guard: no module-level RNG state anywhere in the library.

Every stochastic path (random schedule search, Poisson arrivals, golden
operand draws) must take an explicit seed and build a local generator
(``random.Random(seed)`` / ``np.random.default_rng(seed)``).  Calling
the module-level conveniences (``random.random()``,
``np.random.rand()``, ``random.seed()``) would thread hidden global
state through results and break run-to-run reproducibility.
"""

from __future__ import annotations

import pathlib
import re

import pytest

SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"

#: ``random.<anything>(`` except the Random class constructor; the
#: leading lookbehind keeps ``np.random.default_rng`` out of scope here
#: (the numpy pattern below owns that namespace).
_STDLIB_GLOBAL = re.compile(r"(?<!\.)\brandom\.(?!Random\b)[a-z_]+\s*\(")
#: ``np.random.<anything>`` except default_rng / the Generator type.
_NUMPY_GLOBAL = re.compile(
    r"\b(?:np|numpy)\.random\.(?!default_rng\b|Generator\b)\w+"
)


def _violations(pattern: re.Pattern) -> list[str]:
    found = []
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("#", 1)[0]
            if pattern.search(code):
                found.append(f"{path.relative_to(SRC)}:{lineno}: {line.strip()}")
    return found


def test_no_stdlib_global_rng():
    assert _violations(_STDLIB_GLOBAL) == []


def test_no_numpy_global_rng():
    assert _violations(_NUMPY_GLOBAL) == []


def test_randsearch_requires_explicit_seed(tiny_config, small_mm):
    from repro.compiler.randsearch import random_schedule_search

    with pytest.raises(TypeError):
        random_schedule_search(small_mm, tiny_config, 10)  # no seed
