"""Golden reference models: conv/matmul against independent NumPy math."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.functional import (
    conv2d_int16,
    golden_layer_output,
    matmul_int16,
    random_layer_operands,
)
from repro.workloads.layers import ConvLayer, MatMulLayer


class TestMatmul:
    def test_matches_numpy(self, rng):
        w = rng.integers(-100, 100, size=(5, 7)).astype(np.int16)
        a = rng.integers(-100, 100, size=(7, 3)).astype(np.int16)
        assert np.array_equal(matmul_int16(w, a), w.astype(np.int64) @ a)

    def test_wraps_at_48_bits(self):
        # 32767 * 32767 * k accumulated enough times overflows 48 bits.
        k = 300000
        w = np.full((1, k), 32767, dtype=np.int16)
        a = np.full((k, 1), 32767, dtype=np.int16)
        out = matmul_int16(w, a)
        assert -(1 << 47) <= int(out[0, 0]) < (1 << 47)
        expected = (32767 * 32767 * k + (1 << 47)) % (1 << 48) - (1 << 47)
        assert int(out[0, 0]) == expected

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SimulationError, match="mismatch"):
            matmul_int16(np.zeros((2, 3), np.int16), np.zeros((4, 1), np.int16))

    def test_non_2d_rejected(self):
        with pytest.raises(SimulationError):
            matmul_int16(np.zeros(3, np.int16), np.zeros((3, 1), np.int16))


class TestConv:
    def _reference(self, w, a, stride, padding):
        """Independent direct-loop convolution (no tensordot)."""
        m, n, r, s = w.shape
        _, ih, iw = a.shape
        oh = (ih + 2 * padding - r) // stride + 1
        ow = (iw + 2 * padding - s) // stride + 1
        out = np.zeros((m, oh, ow), dtype=np.int64)
        for mo in range(m):
            for y in range(oh):
                for x in range(ow):
                    acc = 0
                    for c in range(n):
                        for dy in range(r):
                            for dx in range(s):
                                yy = y * stride + dy - padding
                                xx = x * stride + dx - padding
                                if 0 <= yy < ih and 0 <= xx < iw:
                                    acc += int(w[mo, c, dy, dx]) * int(a[c, yy, xx])
                    out[mo, y, x] = acc
        return out

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 3)])
    def test_matches_direct_loops(self, rng, stride, padding):
        w = rng.integers(-50, 50, size=(3, 2, 3, 3)).astype(np.int16)
        a = rng.integers(-50, 50, size=(2, 7, 7)).astype(np.int16)
        got = conv2d_int16(w, a, stride=stride, padding=padding)
        assert np.array_equal(got, self._reference(w, a, stride, padding))

    def test_pointwise_conv_equals_matmul(self, rng):
        w = rng.integers(-50, 50, size=(4, 3, 1, 1)).astype(np.int16)
        a = rng.integers(-50, 50, size=(3, 5, 5)).astype(np.int16)
        got = conv2d_int16(w, a)
        via_mm = matmul_int16(w[:, :, 0, 0], a.reshape(3, 25)).reshape(4, 5, 5)
        assert np.array_equal(got, via_mm)

    def test_empty_output_rejected(self):
        with pytest.raises(SimulationError, match="empty"):
            conv2d_int16(
                np.zeros((1, 1, 5, 5), np.int16), np.zeros((1, 2, 2), np.int16)
            )

    def test_channel_mismatch_rejected(self):
        with pytest.raises(SimulationError, match="channel"):
            conv2d_int16(
                np.zeros((1, 2, 1, 1), np.int16), np.zeros((3, 4, 4), np.int16)
            )


class TestGoldenDispatch:
    def test_conv_dispatch(self, small_conv, rng):
        w, a = random_layer_operands(small_conv, rng)
        out = golden_layer_output(small_conv, w, a)
        assert out.shape == small_conv.out_shape()

    def test_mm_dispatch(self, small_mm, rng):
        w, a = random_layer_operands(small_mm, rng)
        out = golden_layer_output(small_mm, w, a)
        assert out.shape == small_mm.out_shape()

    def test_wrong_shape_rejected(self, small_conv, rng):
        w, a = random_layer_operands(small_conv, rng)
        with pytest.raises(SimulationError, match="expects"):
            golden_layer_output(small_conv, w[:, :1], a)

    def test_random_operands_bounded(self, small_mm, rng):
        w, a = random_layer_operands(small_mm, rng, magnitude=10)
        assert int(np.abs(w).max()) <= 10
        assert int(np.abs(a).max()) <= 10
