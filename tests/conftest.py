"""Shared fixtures: small overlays and layers that keep tests fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.overlay.config import OverlayConfig
from repro.workloads.layers import ConvLayer, MatMulLayer


@pytest.fixture
def tiny_config() -> OverlayConfig:
    """A 3x2x2 overlay with small buffers — fully simulatable."""
    return OverlayConfig(
        d1=3, d2=2, d3=2,
        s_actbuf_words=64,
        s_wbuf_words=256,
        s_psumbuf_words=512,
        clk_h_mhz=650.0,
    )


@pytest.fixture
def small_config() -> OverlayConfig:
    """A 4x3x4 overlay, still cheap to search."""
    return OverlayConfig(
        d1=4, d2=3, d3=4,
        s_actbuf_words=128,
        s_wbuf_words=1024,
        s_psumbuf_words=2048,
        clk_h_mhz=650.0,
    )


@pytest.fixture
def small_conv() -> ConvLayer:
    return ConvLayer(
        name="conv",
        in_channels=6,
        out_channels=8,
        in_h=8,
        in_w=8,
        kernel_h=3,
        kernel_w=3,
        padding=1,
    )


@pytest.fixture
def strided_conv() -> ConvLayer:
    return ConvLayer(
        name="strided",
        in_channels=4,
        out_channels=6,
        in_h=11,
        in_w=11,
        kernel_h=3,
        kernel_w=3,
        stride=2,
        padding=1,
    )


@pytest.fixture
def pointwise_conv() -> ConvLayer:
    return ConvLayer(
        name="pw",
        in_channels=10,
        out_channels=12,
        in_h=6,
        in_w=6,
        kernel_h=1,
        kernel_w=1,
    )


@pytest.fixture
def small_mm() -> MatMulLayer:
    return MatMulLayer(name="mm", in_features=24, out_features=10, batch=4)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(2020)
