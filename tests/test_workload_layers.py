"""Layer definitions, loop nests, footprints, and coordinate maps."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import WorkloadError
from repro.workloads.layers import ConvLayer, EwopLayer, MatMulLayer, PoolLayer


class TestConvLayer:
    def test_output_shape(self, small_conv):
        assert (small_conv.out_h, small_conv.out_w) == (8, 8)

    def test_strided_output_shape(self, strided_conv):
        # (11 + 2 - 3) // 2 + 1 = 6.
        assert (strided_conv.out_h, strided_conv.out_w) == (6, 6)

    def test_loop_nest_is_six_level(self, small_conv):
        names = [d.name for d in small_conv.loop_dims()]
        assert names == ["M", "N", "H", "W", "R", "S"]

    def test_macc_count(self, small_conv):
        assert small_conv.maccs == 8 * 6 * 8 * 8 * 3 * 3

    def test_weight_words(self, small_conv):
        assert small_conv.weight_words == 8 * 6 * 3 * 3

    def test_reduction_tags(self, small_conv):
        tags = {d.name: d.reduction for d in small_conv.loop_dims()}
        assert tags == {
            "M": False, "N": True, "H": False,
            "W": False, "R": True, "S": True,
        }

    def test_act_footprint_window_overlap(self, small_conv):
        # 4x4 output tile of a 3x3 stride-1 conv reads a 6x6 window.
        fp = small_conv.act_footprint({"N": 2, "H": 4, "W": 4, "R": 3, "S": 3})
        assert fp == 2 * 6 * 6

    def test_act_footprint_stride(self, strided_conv):
        # Stride 2: rows = (3 - 1) * 2 + 3 = 7.
        fp = strided_conv.act_footprint({"H": 3, "W": 1, "R": 3, "S": 3})
        assert fp == 7 * 3

    def test_out_and_weight_footprints(self, small_conv):
        tile = {"M": 4, "N": 2, "H": 3, "W": 5, "R": 3, "S": 1}
        assert small_conv.out_footprint(tile) == 4 * 3 * 5
        assert small_conv.weight_footprint(tile) == 4 * 2 * 3 * 1

    def test_coordinate_maps(self, small_conv):
        idx = {"M": 2, "N": 1, "H": 3, "W": 4, "R": 0, "S": 2}
        assert small_conv.weight_coord(idx) == (2, 1, 0, 2)
        # act row = h*stride + r - padding = 3 - 1 = 2; col = 4 + 2 - 1 = 5.
        assert small_conv.act_coord(idx) == (1, 2, 5)
        assert small_conv.out_coord(idx) == (2, 3, 4)

    def test_act_in_range_padding(self, small_conv):
        assert not small_conv.act_in_range((0, -1, 0))
        assert not small_conv.act_in_range((0, 0, 8))
        assert small_conv.act_in_range((5, 7, 7))

    def test_empty_output_rejected(self):
        with pytest.raises(WorkloadError, match="empty output"):
            ConvLayer("bad", 1, 1, in_h=2, in_w=2, kernel_h=5, kernel_w=5)

    def test_invalid_shape_rejected(self):
        with pytest.raises(WorkloadError):
            ConvLayer("bad", 0, 1, in_h=2, in_w=2, kernel_h=1, kernel_w=1)


class TestMatMulLayer:
    def test_loop_nest_is_three_level(self, small_mm):
        assert [d.name for d in small_mm.loop_dims()] == ["M", "N", "P"]

    def test_m_is_the_reduction(self, small_mm):
        tags = {d.name: d.reduction for d in small_mm.loop_dims()}
        assert tags == {"M": True, "N": False, "P": False}

    def test_counts(self, small_mm):
        assert small_mm.maccs == 24 * 10 * 4
        assert small_mm.weight_words == 24 * 10
        assert small_mm.output_words == 10 * 4
        assert small_mm.input_words == 24 * 4

    def test_footprints(self, small_mm):
        tile = {"M": 6, "N": 5, "P": 2}
        assert small_mm.act_footprint(tile) == 12
        assert small_mm.out_footprint(tile) == 10
        assert small_mm.weight_footprint(tile) == 30

    def test_coordinates(self, small_mm):
        idx = {"M": 3, "N": 7, "P": 1}
        assert small_mm.weight_coord(idx) == (7, 3)
        assert small_mm.act_coord(idx) == (3, 1)
        assert small_mm.out_coord(idx) == (7, 1)

    def test_invalid_shape_rejected(self):
        with pytest.raises(WorkloadError):
            MatMulLayer("bad", in_features=0, out_features=1)


class TestEwopAndPool:
    def test_ewop_ops(self):
        layer = EwopLayer("relu", op="relu", n_elements=100, ops_per_element=2)
        assert layer.ops == 200
        assert layer.weight_words == 0

    def test_pool_layer_accounting(self):
        pool = PoolLayer("p", channels=8, in_h=8, in_w=8, kernel=2, stride=2)
        assert pool.n_elements == 8 * 4 * 4
        assert pool.ops_per_element == 4

    def test_pool_empty_output_rejected(self):
        with pytest.raises(WorkloadError):
            PoolLayer("p", channels=1, in_h=2, in_w=2, kernel=5, stride=1)

    def test_negative_elements_rejected(self):
        with pytest.raises(WorkloadError):
            EwopLayer("bad", op="x", n_elements=-1)


@given(
    h_t=st.integers(1, 8),
    w_t=st.integers(1, 8),
    n_t=st.integers(1, 6),
)
def test_conv_footprint_never_exceeds_dense_tile(h_t, w_t, n_t):
    """Window sharing: the input footprint of a spatial tile is never more
    than one full window per output element."""
    layer = ConvLayer("c", 6, 8, in_h=16, in_w=16, kernel_h=3, kernel_w=3)
    tile = {"N": n_t, "H": h_t, "W": w_t, "R": 3, "S": 3}
    fp = layer.act_footprint(tile)
    assert fp <= n_t * (h_t * w_t) * 9
    assert fp >= n_t * h_t * w_t  # at least one input word per output
