"""Cross-layer reconciliation: trace aggregates == engine-native metrics.

The tracing subsystem only *observes* values the compiler and the
serving engine already computed, so every aggregate derivable from a
trace must equal the corresponding report field exactly — no epsilon.
These tests pin that contract for all three instrumented layers.
"""

import pytest

from repro.compiler.cache import ScheduleCache
from repro.compiler.hwsearch import feasible_grids, search_hardware_config
from repro.compiler.search import ScheduleSearch
from repro.faults.monitor import HealthMonitor
from repro.faults.schedule import generate_fault_schedule
from repro.serving.batcher import BatchPolicy
from repro.serving.engine import ServingEngine
from repro.serving.metrics import percentile
from repro.serving.request import RetryPolicy, make_requests, poisson_arrivals
from repro.trace.metrics import MetricsRegistry
from repro.trace.span import Tracer

from tests.test_trace_fuzz import FuzzService


class TestCompilerSearchTracing:
    def test_traced_search_identical_to_untraced(self, tiny_config, small_mm):
        plain = ScheduleSearch(small_mm, tiny_config).run()
        tracer = Tracer(unit="step")
        traced = ScheduleSearch(
            small_mm, tiny_config, tracer=tracer, metrics=MetricsRegistry()
        ).run()
        assert [s.cycles for s in traced] == [s.cycles for s in plain]
        assert [s.mapping for s in traced] == [s.mapping for s in plain]
        assert tracer.validate() == []

    def test_counters_mirror_instance_counts(self, tiny_config, small_conv):
        registry = MetricsRegistry()
        search = ScheduleSearch(
            small_conv, tiny_config, metrics=registry
        )
        search.run()
        counter = registry.counter("search_candidates_evaluated", "")
        assert counter.value(objective="performance") \
            == search.candidates_evaluated
        assert registry.counter("search_steps", "").value(
            objective="performance") == search.steps
        assert registry.counter("search_spatial_choices", "").value(
            objective="performance") == search.spatial_enumerated

    def test_root_span_covers_all_search_steps(self, tiny_config, small_mm):
        tracer = Tracer(unit="step")
        search = ScheduleSearch(small_mm, tiny_config, tracer=tracer)
        search.run()
        root = next(tracer.find(f"search:{small_mm.name}"))
        assert root.start == 0
        assert root.duration == search.steps
        phases = [c.name for c in tracer.children_of(root)]
        assert phases == ["spatial", "evaluate", "materialize"]

    def test_step_base_offsets_the_timeline(self, tiny_config, small_mm):
        tracer = Tracer(unit="step")
        search = ScheduleSearch(
            small_mm, tiny_config, tracer=tracer, step_base=1000
        )
        search.run()
        root = next(tracer.find(f"search:{small_mm.name}"))
        assert root.start == 1000
        assert root.end == 1000 + search.steps

    def test_failed_search_leaves_no_open_spans(self, tiny_config,
                                                small_mm):
        """hwsearch swallows per-grid failures — the tracer must come
        back balanced so the sweep's remaining grids still nest right."""
        from repro.errors import ScheduleError

        tracer = Tracer(unit="step")
        search = ScheduleSearch(small_mm, tiny_config, tracer=tracer)

        def explode(tr):
            tr.begin("evaluate", at=search.steps, track="search")
            raise ScheduleError("no feasible mapping")

        search._run_traced = explode
        with pytest.raises(ScheduleError):
            search.run()
        assert tracer.open_depth == 0
        assert all(s.closed for s in tracer.spans)


class TestCacheAndHwsearchTracing:
    def test_cache_instants_match_stats(self, tiny_config, small_mm,
                                        small_conv):
        tracer = Tracer(unit="step")
        registry = MetricsRegistry()
        cache = ScheduleCache(tiny_config, tracer=tracer, metrics=registry)
        for layer in (small_mm, small_conv, small_mm, small_conv):
            cache.schedule(layer)
        stats = cache.stats()
        hits = [i for i in tracer.instants if i.name == "cache.hit"]
        misses = [i for i in tracer.instants if i.name == "cache.miss"]
        assert len(hits) == stats.hits == 2
        assert len(misses) == stats.misses == 2
        assert registry.counter("schedule_cache_hits", "").value() == 2
        assert registry.counter("schedule_cache_misses", "").value() == 2

    def test_cache_chains_one_monotonic_step_timeline(
        self, tiny_config, small_mm, small_conv
    ):
        tracer = Tracer(unit="step")
        cache = ScheduleCache(tiny_config, tracer=tracer)
        cache.schedule(small_mm)
        cache.schedule(small_conv)
        roots = tracer.roots()
        assert len(roots) == 2
        assert roots[0].start == 0
        assert roots[1].start == roots[0].end  # second search resumes

    def test_hwsearch_nests_per_grid_searches(self, small_mm):
        from repro.overlay.config import OverlayConfig

        config = OverlayConfig(d1=2, d2=2, d3=2)
        tracer = Tracer(unit="step")
        registry = MetricsRegistry()
        result = search_hardware_config(
            small_mm, config, tracer=tracer, metrics=registry
        )
        assert result.best is not None
        assert tracer.validate() == []
        root = next(tracer.find(f"hwsearch:{small_mm.name}"))
        children = tracer.children_of(root)
        n_grids = len(feasible_grids(config.n_tpe))
        assert registry.counter("hwsearch_grids_evaluated", "").value(
            objective="performance") == n_grids
        # One nested search span per grid that got as far as running.
        assert len(children) == n_grids
        assert all(c.name == f"search:{small_mm.name}" for c in children)


def _chaos(seed, tracer=None, metrics=None):
    service = FuzzService(2, service_s=1e-3)
    times = poisson_arrivals(800.0, 80, seed=seed)
    requests = make_requests(times, "fuzz", deadline_s=0.05)
    faults = generate_fault_schedule(
        seed=seed, duration_s=times[-1] - times[0],
        replicas=service.replica_names(), grid=(2, 2, 2),
        crash_rate_hz=15.0, mean_repair_s=0.005, slowdown_rate_hz=5.0,
        bitflip_rate_hz=10.0, correctable_fraction=0.5,
    )
    engine = ServingEngine(
        service, batch_policy=BatchPolicy(max_batch=4, max_wait_s=0.002),
        fault_schedule=faults, retry_policy=RetryPolicy(),
        tracer=tracer, metrics=metrics,
    )
    return engine.run(requests)


class TestServingReconciliation:
    def test_trace_latencies_equal_percentile_inputs(self):
        tracer = Tracer(unit="s")
        report = _chaos(3, tracer=tracer)
        durations = sorted(
            s.duration for s in tracer.find("request")
            if s.args["status"] == "completed"
        )
        assert durations == sorted(report.latencies_s)
        # Therefore every percentile the report exposes is re-derivable
        # from the trace alone, bit-for-bit.
        for q in (50, 95, 99):
            assert percentile(durations, q) \
                == report.latency_percentile_s(q)

    def test_trace_mttr_equals_health_report(self):
        tracer = Tracer(unit="s")
        report = _chaos(4, tracer=tracer)
        assert report.health is not None
        assert report.health.crashes > 0
        repairs = [i.args["repair_s"] for i in tracer.instants
                   if i.name == "health.up"]
        mttr = sum(repairs) / len(repairs) if repairs else 0.0
        assert mttr == report.health.mttr_s

    def test_fault_instants_match_injected_counts(self):
        tracer = Tracer(unit="s")
        report = _chaos(5, tracer=tracer)
        injected = {}
        for instant in tracer.instants:
            if instant.name.startswith("fault."):
                kind = instant.name.removeprefix("fault.")
                injected[kind] = injected.get(kind, 0) + 1
        assert injected == report.fault_counts

    def test_monitor_emits_only_state_changing_transitions(self):
        tracer = Tracer(unit="s")
        monitor = HealthMonitor(["r0"], tracer=tracer)
        monitor.record_crash("r0", 1.0)
        monitor.record_crash("r0", 2.0)   # already down: no new instant
        monitor.record_recovery("r0", 3.0)
        monitor.record_recovery("r0", 4.0)  # already up: no new instant
        names = [i.name for i in tracer.instants]
        assert names == ["health.down", "health.up"]
        assert tracer.instants[1].args["repair_s"] == 2.0


class TestZeroCostDisabled:
    def test_engine_defaults_to_null_instruments(self):
        engine = ServingEngine(FuzzService(1, 1e-3))
        assert not engine.tracer.enabled
        assert not engine.metrics.enabled

    def test_search_defaults_to_null_instruments(self, tiny_config,
                                                 small_mm):
        search = ScheduleSearch(small_mm, tiny_config)
        assert not search.tracer.enabled
        assert not search.metrics.enabled
