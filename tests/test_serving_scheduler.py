"""Replica dispatch and pipeline service models."""

import pytest

from repro.errors import FTDLError, ServingError
from repro.serving.batcher import Batch, BatchServiceModel
from repro.serving.request import InferenceRequest
from repro.serving.scheduler import (
    DispatchScheduler,
    PipelineService,
    ReplicaService,
)
from repro.workloads.layers import EwopLayer, MatMulLayer
from repro.workloads.network import Network


def _net() -> Network:
    return Network(
        name="n", application="test",
        layers=(
            MatMulLayer("fc1", in_features=64, out_features=32),
            MatMulLayer("fc2", in_features=32, out_features=8),
        ),
    )


def _batch(size: int, t: float = 0.0) -> Batch:
    return Batch(
        requests=tuple(
            InferenceRequest(request_id=i, model="n", arrival_s=t)
            for i in range(size)
        ),
        formed_s=t,
    )


class TestReplicaService:
    def test_occupancy_equals_latency(self, tiny_config):
        svc = ReplicaService(BatchServiceModel(_net(), tiny_config), 2)
        assert svc.occupancy_s(4) == svc.latency_s(4)
        assert svc.replica_names() == ["overlay0", "overlay1"]

    def test_invalid_replica_count(self, tiny_config):
        with pytest.raises(ServingError):
            ReplicaService(BatchServiceModel(_net(), tiny_config), 0)


class TestPipelineService:
    def test_latency_exceeds_occupancy(self, tiny_config):
        svc = PipelineService(_net(), tiny_config, n_devices=2)
        if svc.n_devices > 1:
            assert svc.latency_s(2) > svc.occupancy_s(2)
        else:
            assert svc.latency_s(2) == svc.occupancy_s(2)

    def test_occupancy_is_bottleneck_stage(self, tiny_config):
        svc = PipelineService(_net(), tiny_config, n_devices=2)
        stage_times = [s.service_s(2) for s in svc._stages]
        assert svc.occupancy_s(2) == max(stage_times)
        assert svc.latency_s(2) == pytest.approx(sum(stage_times))

    def test_ewop_only_network_rejected(self, tiny_config):
        net = Network(
            name="ew", application="test",
            layers=(EwopLayer("relu", op="relu", n_elements=16),),
        )
        # plan_deployment rejects it first with PartitionError; either
        # way it is a typed FTDLError, not a crash.
        with pytest.raises(FTDLError):
            PipelineService(net, tiny_config, n_devices=2)

    def test_cache_stats_aggregate(self, tiny_config):
        svc = PipelineService(_net(), tiny_config, n_devices=2)
        svc.latency_s(1)
        stats = svc.cache_stats()
        assert stats.misses >= svc.n_devices  # every stage compiled


class TestDispatchScheduler:
    def test_earliest_free_placement(self, tiny_config):
        svc = ReplicaService(BatchServiceModel(_net(), tiny_config), 2)
        sched = DispatchScheduler(svc)
        r0 = sched.free_replica(0.0)
        d0 = sched.dispatch(r0, _batch(2), 0.0)
        r1 = sched.free_replica(0.0)
        assert r1 is not r0
        sched.dispatch(r1, _batch(2), 0.0)
        assert sched.free_replica(0.0) is None
        assert sched.next_free_s() == pytest.approx(d0.complete_s)

    def test_dispatch_busy_replica_raises(self, tiny_config):
        svc = ReplicaService(BatchServiceModel(_net(), tiny_config), 1)
        sched = DispatchScheduler(svc)
        replica = sched.free_replica(0.0)
        sched.dispatch(replica, _batch(1), 0.0)
        with pytest.raises(ServingError):
            sched.dispatch(replica, _batch(1), 0.0)

    def test_utilization_accounting(self, tiny_config):
        svc = ReplicaService(BatchServiceModel(_net(), tiny_config), 2)
        sched = DispatchScheduler(svc)
        replica = sched.free_replica(0.0)
        d = sched.dispatch(replica, _batch(1), 0.0)
        util = sched.utilization(makespan_s=2 * d.complete_s)
        assert util["overlay0"] == pytest.approx(0.5)
        assert util["overlay1"] == 0.0
