"""Dynamic batching policy and the batch → service-time model."""

import pytest

from repro.compiler.cache import ScheduleCache
from repro.errors import ServingError
from repro.serving.batcher import (
    Batcher,
    BatchPolicy,
    BatchServiceModel,
)
from repro.serving.request import InferenceRequest, make_requests
from repro.workloads.layers import EwopLayer, MatMulLayer
from repro.workloads.network import Network


def _req(i: int, t: float) -> InferenceRequest:
    return InferenceRequest(request_id=i, model="m", arrival_s=t)


class TestBatchPolicy:
    def test_invalid_max_batch(self):
        with pytest.raises(ServingError):
            BatchPolicy(max_batch=0)

    def test_invalid_wait(self):
        with pytest.raises(ServingError):
            BatchPolicy(max_wait_s=-1.0)

    def test_non_finite_wait_rejected(self):
        """A NaN wait used to pass the < 0 check (NaN compares false)
        and stall every formation deadline downstream."""
        import math
        with pytest.raises(ServingError):
            BatchPolicy(max_wait_s=math.nan)
        with pytest.raises(ServingError):
            BatchPolicy(max_wait_s=math.inf)


class TestBatcher:
    def test_not_ready_when_empty(self):
        b = Batcher(BatchPolicy(max_batch=4, max_wait_s=0.01))
        assert not b.ready(100.0)

    def test_ready_at_max_batch(self):
        b = Batcher(BatchPolicy(max_batch=2, max_wait_s=10.0))
        b.push(_req(0, 0.0))
        assert not b.ready(0.0)
        b.push(_req(1, 0.0))
        assert b.ready(0.0)

    def test_ready_at_deadline(self):
        b = Batcher(BatchPolicy(max_batch=8, max_wait_s=0.01))
        b.push(_req(0, 1.0))
        assert not b.ready(1.009)
        assert b.ready(1.01)
        assert b.ready(b.next_deadline())  # exact instant, no float gap

    def test_degraded_waives_wait(self):
        b = Batcher(BatchPolicy(max_batch=8, max_wait_s=10.0))
        b.push(_req(0, 0.0))
        assert not b.ready(0.0)
        assert b.ready(0.0, degraded=True)

    def test_pop_fifo_capped_at_max_batch(self):
        b = Batcher(BatchPolicy(max_batch=3, max_wait_s=0.01))
        for i in range(5):
            b.push(_req(i, 0.0))
        batch = b.pop(1.0)
        assert [r.request_id for r in batch.requests] == [0, 1, 2]
        assert batch.size == 3
        assert b.depth == 2

    def test_pop_empty_raises(self):
        b = Batcher(BatchPolicy())
        with pytest.raises(ServingError):
            b.pop(0.0)
        with pytest.raises(ServingError):
            b.next_deadline()


class TestBatcherExpiry:
    def _req(self, i, t, deadline):
        return InferenceRequest(request_id=i, model="m", arrival_s=t,
                                deadline_s=deadline)

    def test_expire_removes_only_expired(self):
        b = Batcher(BatchPolicy(max_batch=8, max_wait_s=10.0))
        b.push(self._req(0, 0.0, 0.5))
        b.push(self._req(1, 0.0, 2.0))
        expired = b.expire(1.0)
        assert [r.request_id for r in expired] == [0]
        assert b.depth == 1

    def test_next_expiry_is_earliest_deadline(self):
        import math
        b = Batcher(BatchPolicy(max_batch=8, max_wait_s=10.0))
        assert math.isinf(b.next_expiry_s())
        b.push(self._req(0, 0.0, 2.0))
        b.push(self._req(1, 0.0, 0.5))
        assert b.next_expiry_s() == pytest.approx(0.5)

    def test_undeadlined_requests_never_expire(self):
        import math
        b = Batcher(BatchPolicy(max_batch=8, max_wait_s=10.0))
        b.push(_req(0, 0.0))
        assert math.isinf(b.next_expiry_s())
        assert b.expire(1e9) == []
        assert b.depth == 1

    def test_pop_all_drains(self):
        b = Batcher(BatchPolicy(max_batch=2, max_wait_s=10.0))
        for i in range(5):
            b.push(_req(i, 0.0))
        drained = b.pop_all()
        assert [r.request_id for r in drained] == [0, 1, 2, 3, 4]
        assert b.depth == 0
        assert len(b) == 0


def _mm_net() -> Network:
    return Network(
        name="mmnet", application="test",
        layers=(
            MatMulLayer("fc1", in_features=64, out_features=32),
            MatMulLayer("fc2", in_features=32, out_features=8),
        ),
    )


class TestBatchServiceModel:
    def test_batching_amortizes_mm_weights(self, tiny_config):
        """Per-request service time falls with batch (the §I trade)."""
        model = BatchServiceModel(_mm_net(), tiny_config)
        per_req_1 = model.service_s(1)
        per_req_8 = model.service_s(8) / 8
        assert per_req_8 < per_req_1

    def test_batch_latency_monotone(self, tiny_config):
        model = BatchServiceModel(_mm_net(), tiny_config)
        costs = [model.service_s(b) for b in (1, 2, 4, 8)]
        assert costs == sorted(costs)

    def test_costs_memoized_through_schedule_cache(self, tiny_config):
        cache = ScheduleCache(tiny_config)
        model = BatchServiceModel(_mm_net(), tiny_config, cache=cache)
        model.service_s(4)
        misses = cache.misses
        model.service_s(4)
        assert cache.misses == misses  # fully memoized per batch size

    def test_invalid_batch_size(self, tiny_config):
        model = BatchServiceModel(_mm_net(), tiny_config)
        with pytest.raises(ServingError):
            model.cost(0)

    def test_ewop_only_network_rejected(self, tiny_config):
        net = Network(
            name="ew", application="test",
            layers=(EwopLayer("relu", op="relu", n_elements=16),),
        )
        with pytest.raises(ServingError):
            BatchServiceModel(net, tiny_config)

    def test_transfer_time_scales_with_batch(self, tiny_config):
        model = BatchServiceModel(_mm_net(), tiny_config)
        assert model.cost(4).transfer_s == pytest.approx(
            4 * model.cost(1).transfer_s
        )

    def test_requests_keep_arrival_order_identity(self):
        reqs = make_requests([0.0, 0.1], "m")
        b = Batcher(BatchPolicy(max_batch=2, max_wait_s=0.01))
        for r in reqs:
            b.push(r)
        batch = b.pop(0.2)
        assert batch.requests[0] is reqs[0]
