"""Correlated failure-domain events and the domain schedule generator."""

import math

import pytest

from repro.cluster import (
    DOMAIN_EVENT_KINDS,
    CorrelatedDramFault,
    DomainFaultEvent,
    NetworkHeal,
    NetworkPartition,
    RackPowerLoss,
    RackPowerRestore,
    build_fleet,
    generate_domain_fault_schedule,
)
from repro.errors import FaultError
from repro.faults import FaultSchedule, generate_fault_schedule
from repro.faults.events import DramBitFlip, FaultEvent


class TestDomainEvents:
    def test_kinds(self):
        assert RackPowerLoss(0.0, "r").kind == "rack_power_loss"
        assert RackPowerRestore(0.0, "r").kind == "rack_power_restore"
        assert NetworkPartition(0.0, "r").kind == "rack_partition"
        assert NetworkHeal(0.0, "r").kind == "rack_heal"
        assert CorrelatedDramFault(0.0, "r").kind == "dram_correlated"
        for event in (RackPowerLoss(0.0, "r"),
                      CorrelatedDramFault(0.0, "r")):
            assert event.kind in DOMAIN_EVENT_KINDS

    def test_domain_alias(self):
        event = RackPowerLoss(1.0, "rack3")
        assert isinstance(event, DomainFaultEvent)
        assert isinstance(event, FaultEvent)
        assert event.domain == event.replica == "rack3"

    def test_rides_in_a_fault_schedule(self):
        sched = FaultSchedule.from_events([
            RackPowerRestore(2.0, "rack0"),
            RackPowerLoss(1.0, "rack0"),
        ])
        assert [e.kind for e in sched.events] == \
            ["rack_power_loss", "rack_power_restore"]
        assert sched.counts() == {
            "rack_power_loss": 1, "rack_power_restore": 1,
        }

    def test_invalid_timestamp_rejected(self):
        with pytest.raises(FaultError):
            RackPowerLoss(-1.0, "r")
        with pytest.raises(FaultError):
            NetworkPartition(math.nan, "r")


class TestCorrelatedDramFault:
    def test_validation(self):
        with pytest.raises(FaultError):
            CorrelatedDramFault(0.0, "r", n_flips=0)
        with pytest.raises(FaultError):
            CorrelatedDramFault(0.0, "r", dram_words=0)

    def test_expand_is_deterministic(self):
        event = CorrelatedDramFault(0.5, "r", n_flips=6, seed=42)
        members = ["b0", "b1", "b2"]
        assert event.expand(members) == event.expand(members)

    def test_expand_seed_changes_draw(self):
        members = ["b0", "b1", "b2", "b3"]
        a = CorrelatedDramFault(0.5, "r", n_flips=6, seed=1).expand(members)
        b = CorrelatedDramFault(0.5, "r", n_flips=6, seed=2).expand(members)
        assert a != b

    def test_expand_targets_members_at_event_instant(self):
        event = CorrelatedDramFault(
            0.5, "r", n_flips=8, seed=3, dram_words=32, correctable=True,
        )
        flips = event.expand(["b0", "b1"])
        assert len(flips) == 8
        for flip in flips:
            assert isinstance(flip, DramBitFlip)
            assert flip.at_s == 0.5
            assert flip.replica in ("b0", "b1")
            assert flip.correctable
            assert flip.word_addr is not None and 0 <= flip.word_addr < 32

    def test_expand_without_dram_words_leaves_addr_unpinned(self):
        flips = CorrelatedDramFault(0.5, "r", n_flips=2).expand(["b0"])
        assert all(f.word_addr is None for f in flips)
        assert all(not f.correctable for f in flips)

    def test_expand_empty_members_rejected(self):
        with pytest.raises(FaultError):
            CorrelatedDramFault(0.5, "r").expand([])


class TestGenerateDomainFaultSchedule:
    FLEET = build_fleet(3, 2)
    KW = dict(duration_s=2.0, rack_loss_rate_hz=3.0,
              partition_rate_hz=2.0, correlated_dram_rate_hz=1.0)

    def test_identical_seed_bit_identical(self):
        a = generate_domain_fault_schedule(
            seed=7, topology=self.FLEET, **self.KW)
        b = generate_domain_fault_schedule(
            seed=7, topology=self.FLEET, **self.KW)
        assert a == b

    def test_seed_changes_schedule(self):
        a = generate_domain_fault_schedule(
            seed=7, topology=self.FLEET, **self.KW)
        b = generate_domain_fault_schedule(
            seed=8, topology=self.FLEET, **self.KW)
        assert a != b

    def test_losses_paired_with_restores(self):
        sched = generate_domain_fault_schedule(
            seed=0, duration_s=4.0, topology=self.FLEET,
            rack_loss_rate_hz=5.0, partition_rate_hz=3.0,
        )
        counts = sched.counts()
        assert counts.get("rack_power_loss", 0) > 0
        assert counts["rack_power_restore"] == counts["rack_power_loss"]
        assert counts["rack_heal"] == counts["rack_partition"]

    def test_events_target_racks_not_boards(self):
        sched = generate_domain_fault_schedule(
            seed=1, duration_s=4.0, topology=self.FLEET,
            rack_loss_rate_hz=5.0,
        )
        assert sched.events
        assert all(e.replica in self.FLEET.rack_names
                   for e in sched.events)

    def test_dram_words_pin_addresses(self):
        sched = generate_domain_fault_schedule(
            seed=2, duration_s=8.0, topology=self.FLEET,
            correlated_dram_rate_hz=2.0, dram_words=16,
            correctable_fraction=1.0, flips_per_event=3,
        )
        events = [e for e in sched.events
                  if isinstance(e, CorrelatedDramFault)]
        assert events
        for event in events:
            assert event.correctable
            flips = event.expand(self.FLEET.members(event.domain))
            assert all(0 <= f.word_addr < 16 for f in flips)

    @pytest.mark.parametrize("kwargs", [
        dict(duration_s=0.0),
        dict(duration_s=math.nan),
        dict(duration_s=1.0, rack_loss_rate_hz=-1.0),
        dict(duration_s=1.0, mean_rack_repair_s=math.inf),
        dict(duration_s=1.0, correctable_fraction=1.5),
        dict(duration_s=1.0, flips_per_event=0),
    ])
    def test_invalid_args(self, kwargs):
        with pytest.raises(FaultError):
            generate_domain_fault_schedule(
                seed=0, topology=self.FLEET, **kwargs)

    def test_zero_rates_yield_empty_schedule(self):
        sched = generate_domain_fault_schedule(
            seed=0, duration_s=1.0, topology=self.FLEET)
        assert len(sched) == 0

    def test_merges_with_per_board_schedule_byte_for_byte(self):
        domain = generate_domain_fault_schedule(
            seed=3, duration_s=1.0, topology=self.FLEET,
            rack_loss_rate_hz=4.0,
        )
        board = generate_fault_schedule(
            seed=4, duration_s=1.0,
            replicas=list(self.FLEET.board_names), crash_rate_hz=8.0,
        )
        merged = FaultSchedule.merge(domain, board)
        assert len(merged) == len(domain) + len(board)
        # Both seeded streams pass through unperturbed.
        assert [e for e in merged.events if e.replica
                in self.FLEET.rack_names] == list(domain.events)
        assert [e for e in merged.events if e.replica
                not in self.FLEET.rack_names] == list(board.events)
