"""Seeded fuzz over (fleet size x fault schedule x tenant mix).

Every draw must satisfy the cluster's core properties: the run is
bit-reproducible, per-tenant accounting is conserved under rack loss,
and a degenerate cluster configuration reproduces the standalone
ServingEngine bit for bit with integrity enabled.
"""

import random

import pytest

from repro.cluster import (
    AutoscalePolicy,
    ClusterEngine,
    FleetService,
    TenantPolicy,
    build_fleet,
    generate_domain_fault_schedule,
)
from repro.faults import FaultSchedule, generate_fault_schedule
from repro.overlay.config import OverlayConfig
from repro.serving.admission import AdmissionPolicy
from repro.serving.batcher import BatchPolicy, BatchServiceModel
from repro.serving.engine import ServingEngine
from repro.serving.request import RetryPolicy, make_requests, poisson_arrivals
from repro.serving.scheduler import ReplicaService
from repro.workloads.layers import MatMulLayer
from repro.workloads.network import Network

CONFIG = OverlayConfig(
    d1=3, d2=2, d3=2, s_actbuf_words=64, s_wbuf_words=256,
    s_psumbuf_words=512, clk_h_mhz=650.0,
)
NETWORK = Network(
    name="mm", application="fuzz",
    layers=(MatMulLayer(name="fc", in_features=192, out_features=160,
                        batch=2),),
)
_MODEL: list[BatchServiceModel] = []

TENANT_MIXES = (
    {},  # single implicit tenant
    {"alpha": 1.0},
    {"alpha": 2.0, "beta": 1.0},
    {"alpha": 3.0, "beta": 1.0, "gamma": 0.5},
)


def model() -> BatchServiceModel:
    if not _MODEL:
        _MODEL.append(BatchServiceModel(NETWORK, CONFIG))
    return _MODEL[0]


def draw_case(seed: int):
    """One deterministic fuzz draw: fleet, faults, tenants, load."""
    rng = random.Random(seed)
    n_racks = rng.randint(1, 3)
    per_rack = rng.randint(1, 4)
    topo = build_fleet(n_racks, per_rack)
    weights = dict(rng.choice(TENANT_MIXES))
    quotas = (
        {t: rng.randint(8, 64) for t in weights if rng.random() < 0.5}
        if weights else {}
    )
    duration = 0.05
    faults = FaultSchedule.merge(
        generate_domain_fault_schedule(
            seed=seed + 1, duration_s=duration, topology=topo,
            rack_loss_rate_hz=rng.choice([0.0, 20.0, 40.0]),
            mean_rack_repair_s=rng.choice([0.002, 0.01]),
            partition_rate_hz=rng.choice([0.0, 20.0]),
            mean_partition_s=0.004,
            correlated_dram_rate_hz=rng.choice([0.0, 20.0]),
        ),
        generate_fault_schedule(
            seed=seed + 2, duration_s=duration,
            replicas=list(topo.board_names), grid=CONFIG,
            crash_rate_hz=rng.choice([0.0, 30.0]),
            mean_repair_s=0.005,
            bitflip_rate_hz=rng.choice([0.0, 100.0]),
            correctable_fraction=0.5,
            tpe_fault_rate_hz=rng.choice([0.0, 50.0]),
            stuck_fraction=0.2,
        ),
    )
    requests = make_requests(
        poisson_arrivals(
            rng.choice([4000.0, 9000.0, 15000.0]), 300, seed=seed + 3,
        ),
        "mm", deadline_s=rng.choice([None, 10e-3, 25e-3]),
    )
    if weights:
        tenants = sorted(weights)
        for i, request in enumerate(requests):
            request.tenant = tenants[i % len(tenants)]
    engine_kwargs = dict(
        batch_policy=BatchPolicy(
            max_batch=rng.choice([4, 8]), max_wait_s=0.5e-3),
        admission_policy=AdmissionPolicy(
            capacity=rng.choice([64, 256])),
        fault_schedule=faults,
        retry_policy=RetryPolicy(
            max_attempts=rng.randint(2, 5), backoff_base_s=0.2e-3),
        integrity_policy=rng.choice(
            ["off", "detect", "detect-reexecute", "detect-correct"]),
        tenant_policy=TenantPolicy(weights=weights, quotas=quotas),
        autoscale_policy=(
            AutoscalePolicy(interval_s=2e-3, min_active=1)
            if rng.random() < 0.5 else None
        ),
        hedge_retries=rng.random() < 0.5,
    )
    return topo, requests, engine_kwargs


def run_case(seed: int):
    topo, requests, kwargs = draw_case(seed)
    report = ClusterEngine(
        FleetService(model(), topo), **kwargs
    ).run(requests)
    return topo, requests, report


def signature(report):
    core = report.core
    return (
        tuple((r.request_id, r.complete_s, r.replica, r.attempts)
              for r in core.completed),
        tuple((r.request_id, r.drop_reason) for r in core.dropped),
        core.n_rejected, core.n_retries, core.makespan_s,
        tuple(sorted(core.utilization.items())),
        tuple(sorted(core.fault_counts.items())),
        tuple(sorted(core.integrity_counts.items())),
        report.describe(),
    )


SEEDS = range(20)


@pytest.mark.parametrize("seed", SEEDS)
def test_every_draw_conserves_per_tenant(seed):
    topo, requests, report = run_case(seed)
    assert report.conserved
    for stats in report.per_tenant.values():
        assert stats.n_offered == (
            stats.n_completed + stats.n_rejected + stats.n_dropped
        )
        assert stats.n_quota_rejected <= stats.n_rejected
        assert 0.0 <= stats.availability <= 1.0
    # The tenant ledgers partition the global ledger exactly.
    assert sum(t.n_offered for t in report.per_tenant.values()) == \
        report.n_offered
    assert sum(t.n_completed for t in report.per_tenant.values()) == \
        report.n_completed
    assert sum(t.n_dropped for t in report.per_tenant.values()) == \
        report.n_dropped
    assert sum(t.n_rejected for t in report.per_tenant.values()) == \
        report.n_rejected
    assert 0.0 <= report.availability <= 1.0


@pytest.mark.parametrize("seed", [0, 3, 7, 11, 16])
def test_same_seed_runs_are_bit_identical(seed):
    _, _, a = run_case(seed)
    _, _, b = run_case(seed)
    assert signature(a) == signature(b)


def test_draws_exercise_the_interesting_paths():
    # The fuzz only means something if the space it walks actually hits
    # faults, drops, retries, multi-tenant mixes and the autoscaler.
    reports = [run_case(seed)[2] for seed in SEEDS]
    assert any(r.core.fault_counts for r in reports)
    assert any(r.core.n_retries > 0 for r in reports)
    assert any(r.n_dropped > 0 for r in reports)
    assert any(len(r.per_tenant) > 1 for r in reports)
    assert any(r.autoscale_ticks > 0 for r in reports)
    assert any(r.drains > 0 for r in reports)


@pytest.mark.parametrize("seed", [1, 5, 9])
def test_degenerate_cluster_matches_serving_engine(seed):
    """detect-correct, standalone vs behind the router: bit-identical."""
    rng = random.Random(1000 + seed)
    n_boards = rng.randint(1, 3)
    names = [f"overlay{i}" for i in range(n_boards)]
    schedule = generate_fault_schedule(
        seed=seed, duration_s=0.05, replicas=names, grid=CONFIG,
        crash_rate_hz=40.0, mean_repair_s=0.008,
        bitflip_rate_hz=150.0, correctable_fraction=0.3,
        tpe_fault_rate_hz=80.0, stuck_fraction=0.2,
    )
    kwargs = dict(
        batch_policy=BatchPolicy(max_batch=8, max_wait_s=0.5e-3),
        admission_policy=AdmissionPolicy(capacity=64),
        fault_schedule=schedule,
        retry_policy=RetryPolicy(max_attempts=4, backoff_base_s=0.2e-3),
        integrity_policy="detect-correct",
    )
    requests = lambda: make_requests(  # noqa: E731
        poisson_arrivals(9000.0, 400, seed=seed), "mm", deadline_s=8e-3,
    )
    single = ServingEngine(
        ReplicaService(model(), n_replicas=n_boards), **kwargs
    ).run(requests())
    cluster = ClusterEngine(
        FleetService(model(), build_fleet(1, n_boards, board_names=names)),
        hedge_retries=False, **kwargs
    ).run(requests())
    assert tuple(
        (r.request_id, r.complete_s, r.replica, r.attempts, r.batch_size)
        for r in single.completed
    ) == tuple(
        (r.request_id, r.complete_s, r.replica, r.attempts, r.batch_size)
        for r in cluster.core.completed
    )
    assert tuple((r.request_id, r.drop_reason) for r in single.dropped) \
        == tuple((r.request_id, r.drop_reason)
                 for r in cluster.core.dropped)
    assert single.n_rejected == cluster.core.n_rejected
    assert single.n_retries == cluster.core.n_retries
    assert single.makespan_s == cluster.core.makespan_s
    assert single.utilization == cluster.core.utilization
    assert single.integrity_counts == cluster.core.integrity_counts
    assert single.fault_counts == cluster.core.fault_counts
    assert (single.health.crashes, single.health.mttr_s,
            single.health.downtime_s) == \
        (cluster.core.health.crashes, cluster.core.health.mttr_s,
         cluster.core.health.downtime_s)
