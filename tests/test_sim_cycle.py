"""Cycle simulator: functional equivalence with the golden models and
timing consistency with the analytical model."""

import numpy as np
import pytest

from repro.compiler.codegen import compile_schedule
from repro.compiler.search import schedule_layer
from repro.errors import SimulationError
from repro.overlay.config import OverlayConfig
from repro.sim.cycle import CycleSimulator
from repro.sim.functional import golden_layer_output, random_layer_operands
from repro.workloads.layers import ConvLayer, MatMulLayer


def _run(layer, config, rng, objective="performance"):
    schedule = schedule_layer(layer, config, objective=objective)
    compiled = compile_schedule(schedule)
    weights, acts = random_layer_operands(layer, rng)
    run = CycleSimulator(config).run_layer(compiled, weights, acts)
    return schedule, run


class TestFunctionalEquivalence:
    def test_conv_matches_golden(self, small_conv, tiny_config, rng):
        _, run = _run(small_conv, tiny_config, rng)
        assert run.golden_match

    def test_strided_conv_matches_golden(self, strided_conv, tiny_config, rng):
        _, run = _run(strided_conv, tiny_config, rng)
        assert run.golden_match

    def test_pointwise_conv_matches_golden(self, pointwise_conv, tiny_config, rng):
        _, run = _run(pointwise_conv, tiny_config, rng)
        assert run.golden_match

    def test_mm_matches_golden(self, small_mm, tiny_config, rng):
        _, run = _run(small_mm, tiny_config, rng)
        assert run.golden_match

    def test_balance_objective_also_correct(self, small_conv, tiny_config, rng):
        _, run = _run(small_conv, tiny_config, rng, objective="balance")
        assert run.golden_match

    def test_useful_maccs_exact(self, small_conv, tiny_config, rng):
        _, run = _run(small_conv, tiny_config, rng)
        assert run.useful_maccs == small_conv.maccs

    def test_issued_at_least_useful(self, strided_conv, tiny_config, rng):
        _, run = _run(strided_conv, tiny_config, rng)
        assert run.issued_maccs >= run.useful_maccs

    def test_corrupted_weights_detected(self, small_mm, tiny_config, rng):
        """The golden check actually checks: feed different weights to the
        simulator than to the oracle and it must raise."""
        schedule = schedule_layer(small_mm, tiny_config)
        compiled = compile_schedule(schedule)
        weights, acts = random_layer_operands(small_mm, rng)
        sim = CycleSimulator(tiny_config)
        run = sim.run_layer(compiled, weights, acts)
        golden_other = golden_layer_output(small_mm, weights + 1, acts)
        assert not np.array_equal(run.output, golden_other)

    def test_extreme_operands_wrap_consistently(self, tiny_config, rng):
        """Full-range int16 operands: wrap-around must match the oracle."""
        layer = MatMulLayer("mm", in_features=16, out_features=4, batch=2)
        schedule = schedule_layer(layer, tiny_config)
        compiled = compile_schedule(schedule)
        weights, acts = random_layer_operands(layer, rng, magnitude=32767)
        run = CycleSimulator(tiny_config).run_layer(compiled, weights, acts)
        assert run.golden_match


class TestTimingConsistency:
    def test_sim_cycles_close_to_model(self, small_conv, tiny_config, rng):
        """The pipeline timeline and the Eqn-12 max() model agree within
        25 % on a compute-bound layer."""
        schedule, run = _run(small_conv, tiny_config, rng)
        model = schedule.estimate.c_exe
        assert abs(run.cycles - model) / model < 0.25

    def test_sim_never_faster_than_compute_floor(self, small_conv, tiny_config, rng):
        schedule, run = _run(small_conv, tiny_config, rng)
        floor = schedule.mapping.x * schedule.mapping.l * schedule.mapping.t
        assert run.cycles >= floor

    def test_double_buffer_ablation_slower(self, small_conv, rng):
        """Serializing communication and computation must cost cycles."""
        base = OverlayConfig(
            d1=3, d2=2, d3=2, s_actbuf_words=64,
            s_wbuf_words=256, s_psumbuf_words=512,
        )
        serial = OverlayConfig(
            d1=3, d2=2, d3=2, s_actbuf_words=64,
            s_wbuf_words=256, s_psumbuf_words=512, double_buffer=False,
        )
        _, run_db = _run(small_conv, base, rng)
        _, run_serial = _run(small_conv, serial, rng)
        assert run_serial.cycles > run_db.cycles
        assert run_serial.golden_match

    def test_efficiency_in_unit_interval(self, small_conv, tiny_config, rng):
        _, run = _run(small_conv, tiny_config, rng)
        assert 0.0 < run.hardware_efficiency <= 1.0

    def test_trace_contains_all_streams(self, small_conv, tiny_config, rng):
        _, run = _run(small_conv, tiny_config, rng)
        assert run.trace.total_words("RD", "weight") > 0
        assert run.trace.total_words("RD", "act") > 0
        assert run.trace.total_words("WR", "psum") > 0

    def test_weight_trace_matches_stored_volume(self, small_conv, tiny_config, rng):
        schedule, run = _run(small_conv, tiny_config, rng)
        mapping = schedule.mapping
        stored = mapping.used_tpes() * small_conv.weight_footprint(
            mapping.tile(("X", "L", "T"))
        )
        assert run.trace.total_words("RD", "weight") == stored

    def test_bus_busy_recorded(self, small_conv, tiny_config, rng):
        _, run = _run(small_conv, tiny_config, rng)
        assert any("actbus" in name for name in run.bus_busy)
        assert run.bus_busy["dram_rd"] > 0
