"""Serving study: batching vs throughput, and the p99 latency knee.

Two system-level claims ride on the paper's §I batch → efficiency
argument once a serving runtime sits on top of the compiler:

* (a) dynamic batching raises *sustained* throughput over batch=1
  serving for MM-dominated workloads (seqLSTM's tied-gate MMs amortize
  every streamed weight over the batch), while CONV-dominated GoogLeNet
  is batch-insensitive — exactly the §I asymmetry;
* (b) p99 latency versus offered load is monotone and knees at
  saturation: below the knee p99 is formation wait + service, past it
  the queue dominates.

Everything runs on the virtual clock, so the whole study is
bit-deterministic given the arrival seed.
"""

from __future__ import annotations

import pytest
from conftest import save_artifact

from repro.serving import (
    AdmissionPolicy,
    BatchPolicy,
    BatchServiceModel,
    ReplicaService,
    ServingEngine,
    make_requests,
    poisson_arrivals,
)
from repro.workloads.mlperf import build_model

MAX_BATCH = 16


@pytest.fixture(scope="module")
def seqlstm_service(paper_config):
    return BatchServiceModel(build_model("Sentimental-seqLSTM"),
                             paper_config)


@pytest.fixture(scope="module")
def googlenet_service(paper_config):
    return BatchServiceModel(build_model("GoogLeNet"), paper_config)


def _burst_throughput(service: BatchServiceModel, max_batch: int,
                      n_requests: int) -> float:
    """Sustained req/s serving one saturating burst at batch ``max_batch``."""
    requests = make_requests([0.0] * n_requests, service.network.name)
    engine = ServingEngine(
        ReplicaService(service, n_replicas=1),
        batch_policy=BatchPolicy(max_batch=max_batch, max_wait_s=1e-3),
        admission_policy=AdmissionPolicy(capacity=n_requests),
        slo_s=1.0,
    )
    report = engine.run(requests)
    assert report.n_completed == n_requests
    return report.throughput_rps


def test_batching_raises_sustained_throughput(
    benchmark, seqlstm_service, googlenet_service
):
    def sweep():
        return {
            (net.network.name, b): _burst_throughput(net, b, 64)
            for net in (seqlstm_service, googlenet_service)
            for b in (1, MAX_BATCH)
        }

    tput = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lstm1 = tput[("Sentimental-seqLSTM", 1)]
    lstm16 = tput[("Sentimental-seqLSTM", MAX_BATCH)]
    goog1 = tput[("GoogLeNet", 1)]
    goog16 = tput[("GoogLeNet", MAX_BATCH)]
    lines = [
        f"Sustained serving throughput, one overlay, burst of 64 requests "
        f"(batch {MAX_BATCH} vs 1)",
        f"{'model':>22s} {'batch=1':>10s} {'batch=16':>10s} {'gain':>7s}",
        f"{'Sentimental-seqLSTM':>22s} {lstm1:10.1f} {lstm16:10.1f} "
        f"{lstm16 / lstm1:6.2f}x",
        f"{'GoogLeNet':>22s} {goog1:10.1f} {goog16:10.1f} "
        f"{goog16 / goog1:6.2f}x",
    ]
    save_artifact("serving_batching_throughput.txt", "\n".join(lines))

    # (a) MM-bound seqLSTM gains substantially from batching ...
    assert lstm16 > 2.0 * lstm1
    # ... while CONV-bound GoogLeNet is batch-insensitive (no regression).
    assert goog16 > 0.95 * goog1


def test_p99_latency_knees_at_saturation(seqlstm_service):
    """p99 vs offered load is monotone and explodes past saturation."""
    saturated = MAX_BATCH / seqlstm_service.service_s(MAX_BATCH)
    fractions = (0.2, 0.5, 0.8, 1.3)
    rows = []
    for load in fractions:
        rate = load * saturated
        requests = make_requests(
            poisson_arrivals(rate, 300, seed=20), "Sentimental-seqLSTM"
        )
        engine = ServingEngine(
            ReplicaService(seqlstm_service, n_replicas=1),
            batch_policy=BatchPolicy(max_batch=MAX_BATCH, max_wait_s=5e-3),
            admission_policy=AdmissionPolicy(capacity=600),
            slo_s=0.2,
        )
        report = engine.run(requests)
        rows.append((load, rate, report))

    lines = [
        "seqLSTM p99 latency vs offered load (fraction of saturation "
        f"throughput {saturated:.1f} req/s)",
        f"{'load':>6s} {'req/s':>8s} {'p50 ms':>9s} {'p99 ms':>9s} "
        f"{'SLO miss':>9s} {'util':>7s}",
    ]
    for load, rate, report in rows:
        lines.append(
            f"{load:6.2f} {rate:8.1f} {report.p50_s * 1e3:9.2f} "
            f"{report.p99_s * 1e3:9.2f} {report.slo_violation_rate:9.2%} "
            f"{report.mean_utilization:7.1%}"
        )
    save_artifact("serving_p99_vs_load.txt", "\n".join(lines))

    p99s = [report.p99_s for _, _, report in rows]
    # (b) monotone in offered load (2% tolerance for arrival noise) ...
    assert all(b >= a * 0.98 for a, b in zip(p99s, p99s[1:]))
    # ... with a knee: past saturation p99 is several times the
    # light-load tail, and the server is pinned.
    assert p99s[-1] > 3.0 * p99s[0]
    assert rows[-1][2].mean_utilization > 0.9


def test_serving_run_is_bit_deterministic(seqlstm_service):
    saturated = MAX_BATCH / seqlstm_service.service_s(MAX_BATCH)

    def run():
        requests = make_requests(
            poisson_arrivals(0.7 * saturated, 200, seed=4),
            "Sentimental-seqLSTM",
        )
        engine = ServingEngine(
            ReplicaService(seqlstm_service, n_replicas=2),
            batch_policy=BatchPolicy(max_batch=MAX_BATCH, max_wait_s=5e-3),
            slo_s=0.2,
        )
        return engine.run(requests)

    first, second = run(), run()
    assert first.latencies_s == second.latencies_s
    assert first.utilization == second.utilization
    assert first.describe() == second.describe()
