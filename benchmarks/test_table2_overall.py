"""Table II: overall performance and related-works comparison.

The full-stack result: GoogLeNet and ResNet50 compiled layer-by-layer on
the paper's example overlay (D1=12, D2=5, D3=20 on the vu125 at 650 MHz,
26 GB/s DRAM), compared against the ten prior works rescaled to the same
DSP count, plus power efficiency from the power model.

Shapes to hold (vs the paper's row):
* FTDL FPS ~ 402.6 (GoogLeNet) / 151.2 (ResNet50), hardware efficiency
  ~ 81.1 % / 74.8 %;
* >= 2x the best prior row ([9]) and >= 5x the baseline row ([10]);
* power efficiency in the tens of GOPS/W (paper: 27.6).
"""

from __future__ import annotations

from conftest import save_artifact
from repro.analysis.comparison import build_table2, format_table2
from repro.compiler.cache import ScheduleCache
from repro.workloads.mlperf import build_model

PAPER_FTDL = {
    "GoogLeNet": {"fps": 402.6, "eff": 0.811},
    "ResNet50": {"fps": 151.2, "eff": 0.748},
    "gops_per_watt": 27.6,
    "power_w": 45.8,
}


def test_table2_overall(benchmark, googlenet_result, resnet50_result, vu125):
    results = {
        "GoogLeNet": googlenet_result,
        "ResNet50": resnet50_result,
    }
    rows = build_table2(results, vu125)
    text = format_table2(rows, ["GoogLeNet", "ResNet50"])
    detail = "\n".join(
        [
            "",
            f"FTDL measured: GoogLeNet {googlenet_result.fps:.1f} FPS "
            f"(paper 402.6), eff {googlenet_result.hardware_efficiency:.1%} "
            f"(paper 81.1%)",
            f"               ResNet50 {resnet50_result.fps:.1f} FPS "
            f"(paper 151.2), eff {resnet50_result.hardware_efficiency:.1%} "
            f"(paper 74.8%)",
            f"               power eff {rows[-1].gops_per_watt:.1f} GOPS/W "
            f"(paper 27.6)",
        ]
    )
    save_artifact("table2_overall.txt", text + "\n" + detail)

    ftdl, baseline, best_prior = rows[-1], rows[0], rows[-2]
    assert best_prior.key == "[9]"

    # FPS within 15 % of the paper's FTDL row.
    assert abs(googlenet_result.fps - 402.6) / 402.6 < 0.15
    assert abs(resnet50_result.fps - 151.2) / 151.2 < 0.15
    # Hardware efficiency in the paper's band.
    assert googlenet_result.hardware_efficiency > 0.75
    assert resnet50_result.hardware_efficiency > 0.70
    # Speedup ordering: FTDL beats every prior row on both models.
    for model in ("GoogLeNet", "ResNet50"):
        speedups = [ftdl.speedup_over(row, model) for row in rows[:-1]]
        assert min(speedups) > 1.5, model
        assert ftdl.speedup_over(baseline, model) > 5.0, model
    # Power efficiency in the right decade.
    assert 15.0 < ftdl.gops_per_watt < 45.0

    # Benchmark kernel: re-scheduling one frame's worth of unique layers
    # against a cold cache (the compiler's throughput).
    net = build_model("GoogLeNet")
    heavy = [l for l in net.accelerated_layers()][:6]

    def compile_prefix():
        cache = ScheduleCache(googlenet_result.config)
        return sum(cache.schedule(l).cycles for l in heavy)

    benchmark.pedantic(compile_prefix, rounds=1, iterations=1)


def test_table2_prior_rows_match_paper(benchmark, googlenet_result, vu125):
    """The prior-work columns reproduce the paper's printed FPS ratios:
    every row's GoogLeNet speedup over [10] within 10 % of the printed
    factor."""
    printed_ratios = {
        "[10]": 1.0, "[2]": 1.1, "[3]": 1.3, "[4]": 1.7, "[5]": 1.4,
        "[7]": 1.4, "[8]": 1.6, "[21]": 1.6, "[1]": 1.9, "[9]": 3.1,
    }
    rows = benchmark(
        build_table2, {"GoogLeNet": googlenet_result}, vu125
    )
    baseline = rows[0]
    for row in rows[:-1]:
        ratio = row.speedup_over(baseline, "GoogLeNet")
        assert abs(ratio - printed_ratios[row.key]) <= 0.1, row.key


def test_table2_transformer_extension(benchmark, paper_config):
    """Table II extension: the transformer suite on the paper's example
    overlay.  The paper prints no transformer row, so the claims here
    are internal consistency: positive throughput, hardware efficiency
    in (0, 1], and honest host-op accounting — the 0-MACC eltwise /
    softmax / layernorm layers appear as host work, never as TPE work.
    """
    from repro.analysis.efficiency import evaluate_network
    from repro.workloads import build_workload, registered_workloads

    cache = ScheduleCache(paper_config)
    specs = registered_workloads("transformer")
    results = {
        spec.name: evaluate_network(
            build_workload(spec.name), paper_config, cache=cache,
        )
        for spec in specs
    }

    lines = [
        f"{'network':18s} {'layers':>6s} {'acc':>4s} {'Mmacc':>8s} "
        f"{'FPS':>10s} {'HW eff':>7s} {'host Mops':>10s}"
    ]
    for name, result in results.items():
        net = result.network
        lines.append(
            f"{name:18s} {len(net.layers):6d} "
            f"{len(net.accelerated_layers()):4d} "
            f"{net.accelerated_maccs / 1e6:8.2f} {result.fps:10.1f} "
            f"{result.hardware_efficiency:7.1%} "
            f"{result.host_ops / 1e6:10.3f}"
        )
    save_artifact("table2_transformer_ext.txt", "\n".join(lines))

    for name, result in results.items():
        assert result.fps > 0.0, name
        assert 0.0 < result.hardware_efficiency <= 1.0, name
        # Host ops include (and exceed) the EWOP-only count whenever the
        # network carries eltwise/softmax/norm layers.
        assert result.host_ops >= result.host_ewop_ops, name
        assert result.attained_gops < paper_config.peak_gops, name
    base = results["Transformer-base"]
    assert base.host_ops > base.host_ewop_ops  # softmax/norm accounted
    # The MACC-heavy encoder stack outruns the micro chain in ops but
    # not in FPS: per-frame work dominates frame rate.
    assert results["TinyAttention"].fps > base.fps

    # Benchmark kernel: cold-cache scheduling of the full tiny chain.
    benchmark.pedantic(
        lambda: evaluate_network(
            build_workload("TinyAttention"), paper_config,
            cache=ScheduleCache(paper_config),
        ),
        rounds=1, iterations=1,
    )
