"""Table II: overall performance and related-works comparison.

The full-stack result: GoogLeNet and ResNet50 compiled layer-by-layer on
the paper's example overlay (D1=12, D2=5, D3=20 on the vu125 at 650 MHz,
26 GB/s DRAM), compared against the ten prior works rescaled to the same
DSP count, plus power efficiency from the power model.

Shapes to hold (vs the paper's row):
* FTDL FPS ~ 402.6 (GoogLeNet) / 151.2 (ResNet50), hardware efficiency
  ~ 81.1 % / 74.8 %;
* >= 2x the best prior row ([9]) and >= 5x the baseline row ([10]);
* power efficiency in the tens of GOPS/W (paper: 27.6).
"""

from __future__ import annotations

from conftest import save_artifact
from repro.analysis.comparison import build_table2, format_table2
from repro.compiler.cache import ScheduleCache
from repro.workloads.mlperf import build_model

PAPER_FTDL = {
    "GoogLeNet": {"fps": 402.6, "eff": 0.811},
    "ResNet50": {"fps": 151.2, "eff": 0.748},
    "gops_per_watt": 27.6,
    "power_w": 45.8,
}


def test_table2_overall(benchmark, googlenet_result, resnet50_result, vu125):
    results = {
        "GoogLeNet": googlenet_result,
        "ResNet50": resnet50_result,
    }
    rows = build_table2(results, vu125)
    text = format_table2(rows, ["GoogLeNet", "ResNet50"])
    detail = "\n".join(
        [
            "",
            f"FTDL measured: GoogLeNet {googlenet_result.fps:.1f} FPS "
            f"(paper 402.6), eff {googlenet_result.hardware_efficiency:.1%} "
            f"(paper 81.1%)",
            f"               ResNet50 {resnet50_result.fps:.1f} FPS "
            f"(paper 151.2), eff {resnet50_result.hardware_efficiency:.1%} "
            f"(paper 74.8%)",
            f"               power eff {rows[-1].gops_per_watt:.1f} GOPS/W "
            f"(paper 27.6)",
        ]
    )
    save_artifact("table2_overall.txt", text + "\n" + detail)

    ftdl, baseline, best_prior = rows[-1], rows[0], rows[-2]
    assert best_prior.key == "[9]"

    # FPS within 15 % of the paper's FTDL row.
    assert abs(googlenet_result.fps - 402.6) / 402.6 < 0.15
    assert abs(resnet50_result.fps - 151.2) / 151.2 < 0.15
    # Hardware efficiency in the paper's band.
    assert googlenet_result.hardware_efficiency > 0.75
    assert resnet50_result.hardware_efficiency > 0.70
    # Speedup ordering: FTDL beats every prior row on both models.
    for model in ("GoogLeNet", "ResNet50"):
        speedups = [ftdl.speedup_over(row, model) for row in rows[:-1]]
        assert min(speedups) > 1.5, model
        assert ftdl.speedup_over(baseline, model) > 5.0, model
    # Power efficiency in the right decade.
    assert 15.0 < ftdl.gops_per_watt < 45.0

    # Benchmark kernel: re-scheduling one frame's worth of unique layers
    # against a cold cache (the compiler's throughput).
    net = build_model("GoogLeNet")
    heavy = [l for l in net.accelerated_layers()][:6]

    def compile_prefix():
        cache = ScheduleCache(googlenet_result.config)
        return sum(cache.schedule(l).cycles for l in heavy)

    benchmark.pedantic(compile_prefix, rounds=1, iterations=1)


def test_table2_prior_rows_match_paper(benchmark, googlenet_result, vu125):
    """The prior-work columns reproduce the paper's printed FPS ratios:
    every row's GoogLeNet speedup over [10] within 10 % of the printed
    factor."""
    printed_ratios = {
        "[10]": 1.0, "[2]": 1.1, "[3]": 1.3, "[4]": 1.7, "[5]": 1.4,
        "[7]": 1.4, "[8]": 1.6, "[21]": 1.6, "[1]": 1.9, "[9]": 3.1,
    }
    rows = benchmark(
        build_table2, {"GoogLeNet": googlenet_result}, vu125
    )
    baseline = rows[0]
    for row in rows[:-1]:
        ratio = row.speedup_over(baseline, "GoogLeNet")
        assert abs(ratio - printed_ratios[row.key]) <= 0.1, row.key
