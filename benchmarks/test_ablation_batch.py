"""Ablation: batch size vs hardware efficiency on MM workloads.

The paper's introduction argues that competing designs need large batches
to stay efficient, which is "infeasible for edge devices that need low
latency".  This study quantifies the batch effect on FTDL itself for the
seqLSTM's gate MM: batch-1 is weight-bandwidth-bound, and efficiency
climbs with batch as each streamed weight amortizes over more MACCs —
until compute binds.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.compiler.search import schedule_layer
from repro.workloads.layers import MatMulLayer
from repro.workloads.models.sentiment import SEQLSTM_HIDDEN

BATCHES = (1, 2, 4, 8, 16, 32, 64)


def _gate_mm(batch: int) -> MatMulLayer:
    return MatMulLayer(
        name=f"lstm_gates_b{batch}",
        in_features=2 * SEQLSTM_HIDDEN,
        out_features=4 * SEQLSTM_HIDDEN,
        batch=batch,
    )


def test_batch_sweep(benchmark, paper_config):
    def sweep():
        return {
            batch: schedule_layer(_gate_mm(batch), paper_config)
            for batch in BATCHES
        }

    schedules = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Batch sweep — seqLSTM fused-gate MM (2234 -> 4468) on the paper "
        "overlay, weights streamed",
        f"{'batch':>6s} {'cycles':>10s} {'eff':>7s} {'eff/frame-pair':>15s} "
        f"{'bound':>8s}",
    ]
    prev_eff = 0.0
    for batch, schedule in schedules.items():
        est = schedule.estimate
        lines.append(
            f"{batch:6d} {est.c_exe:10,d} {est.hardware_efficiency:7.1%} "
            f"{est.hardware_efficiency / max(prev_eff, 1e-9):14.2f}x "
            f"{est.bottleneck:>8s}"
        )
        prev_eff = est.hardware_efficiency
    save_artifact("ablation_batch.txt", "\n".join(lines))

    effs = [s.estimate.hardware_efficiency for s in schedules.values()]
    # Efficiency is monotone non-decreasing in batch ...
    assert all(b >= a * 0.98 for a, b in zip(effs, effs[1:]))
    # ... starts bandwidth-bound and ends at least 10x better.
    assert effs[0] < 0.05
    assert effs[-1] > 10 * effs[0]
    # Latency per batch grows sublinearly until compute binds: batch-64
    # costs far less than 64x the batch-1 cycles.
    c1 = schedules[1].estimate.c_exe
    c64 = schedules[64].estimate.c_exe
    assert c64 < 8 * c1
