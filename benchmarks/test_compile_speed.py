"""Compile fast path: measured speedups and byte-for-byte identity.

This is the one benchmark allowed to read the wall clock (enforced by
``tests/test_no_wall_clock.py``): its whole job is to measure the real
compile-time effect of the temporal memo, the persistent schedule store,
the parallel fan-out, and the vectorized functional simulator — while
asserting every fast path returns exactly the sequential result.

Saved as ``benchmarks/out/BENCH_compile.json``.  Two depths:

* **budget mode** (``REPRO_BENCH_BUDGET=1``, the CI smoke): SmallCNN on
  a 3x2x2 grid — seconds, not minutes.
* **full mode** (default): the paper's five MLPerf networks on the
  paper's 12x5x20 example overlay.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from conftest import OUT_DIR
from repro.compiler import (
    ScheduleSearch,
    compile_schedule,
    parallel_schedule_network,
    schedule_layer,
    schedule_network,
)
from repro.compiler.cache import ScheduleCache, layer_signature
from repro.compiler.persist import PersistentScheduleStore
from repro.overlay.config import OverlayConfig, PAPER_EXAMPLE_CONFIG
from repro.sim.cycle import CycleSimulator
from repro.sim.functional import random_layer_operands
from repro.workloads.mlperf import MLPERF_MODELS, build_model
from repro.workloads.models import build_smallcnn

BUDGET = os.environ.get("REPRO_BENCH_BUDGET") == "1"

#: Minimum warm-persistent-store speedup over a cold full search.
WARM_SPEEDUP_FLOOR = 3.0


def _workloads():
    if BUDGET:
        return OverlayConfig(3, 2, 2), [build_smallcnn()]
    return PAPER_EXAMPLE_CONFIG, [build_model(m) for m in MLPERF_MODELS]


def _identical(a, b) -> bool:
    return all(
        x.mapping == y.mapping and x.estimate == y.estimate
        for x, y in zip(a, b)
    ) and len(a) == len(b)


def _bench_network(network, config, store_root) -> dict:
    distinct = []
    seen = set()
    for layer in network.accelerated_layers():
        signature = layer_signature(layer)
        if signature not in seen:
            seen.add(signature)
            distinct.append(layer)

    # Baseline: plain sequential compile, fresh cache, no fast path.
    t0 = time.perf_counter()
    baseline = schedule_network(network, config)
    t_baseline = time.perf_counter() - t0

    # Candidate throughput from bare searches over the distinct shapes.
    t0 = time.perf_counter()
    candidates = steps = 0
    for layer in distinct:
        search = ScheduleSearch(layer, config, top_k=1)
        search.run()
        candidates += search.candidates_evaluated
        steps += search.steps
    t_search = time.perf_counter() - t0

    # Cold start against an empty persistent store (search + write-back).
    cold_cache = ScheduleCache(
        config, store=PersistentScheduleStore(store_root)
    )
    t0 = time.perf_counter()
    cold = [cold_cache.schedule(l) for l in network.accelerated_layers()]
    t_cold = time.perf_counter() - t0

    # Warm start: a new process-equivalent cache over the filled store.
    warm_cache = ScheduleCache(
        config, store=PersistentScheduleStore(store_root)
    )
    t0 = time.perf_counter()
    warm = [warm_cache.schedule(l) for l in network.accelerated_layers()]
    t_warm = time.perf_counter() - t0

    t0 = time.perf_counter()
    fanned = parallel_schedule_network(network, config, max_workers=2)
    t_parallel = time.perf_counter() - t0

    identical = (
        _identical(baseline, cold)
        and _identical(baseline, warm)
        and _identical(baseline, fanned)
    )
    assert identical, f"{network.name}: fast paths diverged from baseline"
    warm_speedup = t_baseline / t_warm if t_warm > 0 else float("inf")
    assert warm_speedup >= WARM_SPEEDUP_FLOOR, (
        f"{network.name}: warm persistent-store compile only "
        f"{warm_speedup:.1f}x faster than baseline "
        f"(floor {WARM_SPEEDUP_FLOOR}x)"
    )
    warm_stats = warm_cache.stats()
    assert warm_stats.compiles == 0, "warm start should never search"

    memo = cold_cache.temporal_memo
    return {
        "model": network.name,
        "n_layers": len(network.accelerated_layers()),
        "distinct_shapes": len(distinct),
        "search_candidates": int(candidates),
        "search_steps": int(steps),
        "candidates_per_s": round(candidates / t_search, 1),
        "t_baseline_s": round(t_baseline, 4),
        "t_cold_store_s": round(t_cold, 4),
        "t_warm_store_s": round(t_warm, 4),
        "t_parallel_s": round(t_parallel, 4),
        "warm_speedup": round(warm_speedup, 1),
        "memo_hit_rate": round(memo.hit_rate, 4),
        "memory_hit_rate": round(warm_stats.hit_rate, 4),
        "persistent_hits": warm_stats.persistent_hits,
        "identical": identical,
    }


def _bench_simulator(config) -> dict:
    network = build_smallcnn()
    layer = network.accelerated_layers()[0]
    sim_config = config if BUDGET else OverlayConfig(3, 2, 2)
    compiled = compile_schedule(schedule_layer(layer, sim_config))
    rng = np.random.default_rng(42)
    weights, acts = random_layer_operands(layer, rng)

    reference = CycleSimulator(sim_config, functional_engine="reference")
    vectorized = CycleSimulator(sim_config)
    t0 = time.perf_counter()
    out_ref, useful_ref, issued_ref = reference._functional(
        compiled, weights, acts
    )
    t_ref = time.perf_counter() - t0
    t0 = time.perf_counter()
    out_vec, useful_vec, issued_vec = vectorized._functional(
        compiled, weights, acts
    )
    t_vec = time.perf_counter() - t0

    bit_identical = bool(
        np.array_equal(out_ref, out_vec)
        and (useful_ref, issued_ref) == (useful_vec, issued_vec)
    )
    assert bit_identical, "vectorized simulator diverged from reference"
    speedup = t_ref / t_vec if t_vec > 0 else float("inf")
    assert speedup > 1.0, (
        f"vectorized simulator not faster: {speedup:.2f}x"
    )
    return {
        "layer": layer.name,
        "maccs": int(layer.maccs),
        "t_reference_s": round(t_ref, 4),
        "t_vectorized_s": round(t_vec, 4),
        "speedup": round(speedup, 1),
        "bit_identical": bit_identical,
    }


def test_compile_fast_path_speed(out_dir, tmp_path):
    config, networks = _workloads()
    rows = [
        _bench_network(network, config, tmp_path / network.name)
        for network in networks
    ]
    sim = _bench_simulator(config)

    bench = {
        "bench": "compile_fast_path",
        "budget_mode": BUDGET,
        "grid": f"{config.d1}x{config.d2}x{config.d3}",
        "warm_speedup_floor": WARM_SPEEDUP_FLOOR,
        "networks": rows,
        "simulator": sim,
    }
    (OUT_DIR / "BENCH_compile.json").write_text(
        json.dumps(bench, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        f"Compile fast path — grid {bench['grid']}"
        f"{' (budget mode)' if BUDGET else ''}",
        f"{'model':>22s} {'layers':>6s} {'shapes':>6s} {'base s':>8s} "
        f"{'warm s':>8s} {'speedup':>8s} {'cand/s':>10s} {'memo':>6s}",
    ]
    for row in rows:
        lines.append(
            f"{row['model']:>22s} {row['n_layers']:>6d} "
            f"{row['distinct_shapes']:>6d} {row['t_baseline_s']:>8.3f} "
            f"{row['t_warm_store_s']:>8.3f} {row['warm_speedup']:>7.1f}x "
            f"{row['candidates_per_s']:>10,.0f} "
            f"{row['memo_hit_rate']:>6.1%}"
        )
    lines.append(
        f"simulator ({sim['layer']}, {sim['maccs']:,} MACCs): "
        f"reference {sim['t_reference_s']:.3f}s vs vectorized "
        f"{sim['t_vectorized_s']:.3f}s -> {sim['speedup']:.1f}x"
    )
    text = "\n".join(lines)
    (OUT_DIR / "compile_fast_path.txt").write_text(text + "\n")
    print(f"\n=== compile_fast_path ===\n{text}")
