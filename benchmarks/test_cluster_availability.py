"""Fleet-scale availability under rack power loss, and its price.

Two claims ride on the cluster layer:

* (a) **capacity headroom buys availability**: at a fixed offered load,
  losing one rack costs a small fleet real availability (the survivors
  saturate and deadlines expire) while a larger fleet absorbs the same
  loss invisibly — the availability + p99 vs fleet-size curve is the
  repo's first standing ``BENCH_*.json`` trajectory;
* (b) the **acceptance campaign** from the cluster issue: a 100-board
  fleet sustains one million requests through a full rack power loss
  with zero accounting violations per tenant, >= 99% availability, a
  windowed-p99 spike that returns to the pre-loss steady state within
  the campaign, and a bit-identical report across two same-seed runs.

Everything runs on the virtual clock; the only nondeterminism knob is
the arrival seed.
"""

from __future__ import annotations

import json

import pytest
from conftest import OUT_DIR, save_artifact

from repro.cluster import (
    ClusterEngine,
    FleetService,
    RackPowerLoss,
    RackPowerRestore,
    TenantPolicy,
    build_fleet,
)
from repro.faults import FaultSchedule
from repro.overlay.config import OverlayConfig
from repro.serving.admission import AdmissionPolicy
from repro.serving.batcher import BatchPolicy, BatchServiceModel
from repro.serving.request import RetryPolicy, make_requests, poisson_arrivals
from repro.tools.cluster import assign_tenants
from repro.workloads.layers import MatMulLayer
from repro.workloads.network import Network

CONFIG = OverlayConfig(
    d1=3, d2=2, d3=2, s_actbuf_words=64, s_wbuf_words=256,
    s_psumbuf_words=512, clk_h_mhz=650.0,
)
NETWORK = Network(
    name="mm", application="bench",
    layers=(MatMulLayer(name="fc", in_features=192, out_features=160,
                        batch=2),),
)
MAX_BATCH = 16
TENANTS = {"alpha": 2.0, "beta": 1.0}


@pytest.fixture(scope="module")
def model():
    return BatchServiceModel(NETWORK, CONFIG)


def _run_campaign(model, *, n_racks, boards_per_rack, rate, n_requests,
                  seed, loss_s, restore_s, deadline_s=None, slo_s=50e-3):
    """One seeded campaign: rack0 dies at ``loss_s``, returns at
    ``restore_s``; two tenants share the fleet 2:1."""
    topology = build_fleet(n_racks, boards_per_rack)
    faults = FaultSchedule.from_events([
        RackPowerLoss(at_s=loss_s, replica="rack0"),
        RackPowerRestore(at_s=restore_s, replica="rack0"),
    ])
    requests = make_requests(
        poisson_arrivals(rate, n_requests, seed=seed), "mm",
        deadline_s=deadline_s,
    )
    assign_tenants(requests, TENANTS)
    engine = ClusterEngine(
        FleetService(model, topology),
        batch_policy=BatchPolicy(max_batch=MAX_BATCH, max_wait_s=0.5e-3),
        admission_policy=AdmissionPolicy(capacity=50_000),
        slo_s=slo_s,
        fault_schedule=faults,
        retry_policy=RetryPolicy(max_attempts=4, backoff_base_s=0.2e-3),
        tenant_policy=TenantPolicy(weights=dict(TENANTS)),
    )
    return engine.run(requests)


def test_availability_vs_fleet_size(model, out_dir):
    """(a) Fixed offered load + one lost rack, growing fleets.

    The load saturates two boards at half duty; the 4-board fleet's
    only rack dying for 20 ms expires deadlines wholesale, while the
    16-board fleet never notices.  Saved as ``BENCH_cluster.json``.
    """
    per_board_rps = MAX_BATCH / model.service_s(MAX_BATCH)
    rate = 2.0 * per_board_rps
    rows = []
    for n_racks in (1, 2, 4):
        report = _run_campaign(
            model, n_racks=n_racks, boards_per_rack=4, rate=rate,
            n_requests=20_000, seed=42, loss_s=0.020, restore_s=0.040,
            deadline_s=10e-3, slo_s=10e-3,
        )
        assert report.conserved, report.describe()
        rows.append((n_racks, report))

    bench = {
        "bench": "cluster_availability_vs_fleet_size",
        "model": NETWORK.name,
        "offered_rps": round(rate, 1),
        "n_requests": 20_000,
        "seed": 42,
        "rack_outage_ms": 20.0,
        "results": [
            {
                "n_racks": n_racks,
                "n_boards": report.n_boards,
                "availability": round(report.availability, 6),
                "p99_ms": round(report.p99_s * 1e3, 4),
                "n_dropped": report.n_dropped,
                "n_retries": report.core.n_retries,
                "conserved": report.conserved,
            }
            for n_racks, report in rows
        ],
    }
    (OUT_DIR / "BENCH_cluster.json").write_text(
        json.dumps(bench, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        f"Availability + p99 vs fleet size — {rate:,.0f} req/s offered, "
        "rack0 powered off for 20 ms mid-run",
        f"{'fleet':>12s} {'avail':>9s} {'p99 ms':>8s} {'dropped':>8s} "
        f"{'retries':>8s}",
    ]
    for n_racks, report in rows:
        lines.append(
            f"{report.n_boards:>3d}b/{n_racks}r{'':>5s} "
            f"{report.availability:>9.2%} {report.p99_s * 1e3:>8.2f} "
            f"{report.n_dropped:>8d} {report.core.n_retries:>8d}"
        )
    save_artifact("cluster_availability_vs_fleet_size.txt",
                  "\n".join(lines))

    avails = [report.availability for _, report in rows]
    p99s = [report.p99_s for _, report in rows]
    # Headroom is monotone: more racks never hurt availability or p99.
    assert all(b >= a for a, b in zip(avails, avails[1:]))
    assert all(b <= a * 1.02 for a, b in zip(p99s, p99s[1:]))
    # The single-rack fleet visibly pays for the outage; four racks
    # absorb it completely.
    assert avails[0] < 0.95
    assert avails[-1] >= 0.99
    assert rows[-1][1].n_dropped == 0


def test_acceptance_campaign_one_million_requests(model, out_dir):
    """(b) 100 boards, 1M requests, full rack power loss — and back.

    Offered load is 95% of full-fleet capacity, so losing rack0 (10% of
    capacity) makes the survivors run a real deficit: the backlog and
    the windowed p99 climb until power returns, then drain back to the
    pre-loss steady state well before the run ends.
    """
    per_board_rps = MAX_BATCH / model.service_s(MAX_BATCH)
    rate = 0.95 * 100 * per_board_rps
    n_requests = 1_000_000
    loss_s, restore_s, window_s = 0.020, 0.025, 2e-3

    def run():
        return _run_campaign(
            model, n_racks=10, boards_per_rack=10, rate=rate,
            n_requests=n_requests, seed=7,
            loss_s=loss_s, restore_s=restore_s,
        )

    report = run()

    # Zero accounting violations, per tenant and in aggregate.
    assert report.conserved, report.describe()
    for stats in report.per_tenant.values():
        assert stats.conserved, stats.describe()
    assert sum(t.n_offered for t in report.per_tenant.values()) \
        == n_requests

    # The campaign survived the rack: every member drained and came
    # back through a cold start.
    assert report.drains == 10
    assert report.readmits == 10
    assert report.cold_starts == 10

    # Availability >= 99% even counting the dead rack's lost work.
    assert report.availability >= 0.99, report.describe()

    # p99 recovery: the outage spikes the windowed p99 well above the
    # pre-loss steady state, and the tail of the run returns to it.
    # The last window is excluded — it holds only the final stragglers.
    curve = report.windowed_p99(window_s)[:-1]
    pre = [p for t, p in curve if t <= loss_s and p > 0]
    post = [p for t, p in curve if t > restore_s + 0.015 and p > 0]
    baseline = sorted(pre)[len(pre) // 2]
    spike = max(p for t, p in curve)
    assert spike > 2.0 * baseline
    assert post, "campaign must outlive the recovery"
    tail = sorted(post)[len(post) // 2]
    assert tail <= 1.5 * baseline, (baseline, tail)

    lines = [
        "Acceptance campaign — 100 boards / 10 racks, "
        f"{n_requests:,} requests at {rate:,.0f} req/s",
        f"rack0 power loss at {loss_s * 1e3:.0f} ms, restored at "
        f"{restore_s * 1e3:.0f} ms",
        "",
        report.describe(),
        "",
        f"windowed p99 ({window_s * 1e3:.0f} ms windows): baseline "
        f"{baseline * 1e6:.0f} us, spike {spike * 1e6:.0f} us, "
        f"tail {tail * 1e6:.0f} us",
    ]
    save_artifact("cluster_acceptance_campaign.txt", "\n".join(lines))

    # Bit-for-bit reproducibility of the entire report.
    again = run()
    assert again.describe() == report.describe()
    assert [
        (r.request_id, r.complete_s, r.replica, r.attempts)
        for r in again.core.completed
    ] == [
        (r.request_id, r.complete_s, r.replica, r.attempts)
        for r in report.core.completed
    ]
    assert [
        (r.request_id, r.drop_reason) for r in again.core.dropped
    ] == [
        (r.request_id, r.drop_reason) for r in report.core.dropped
    ]
