"""Ablation: double-pump clocking (§III-A2).

Without double pumping, the whole TPE runs at the BRAM-limited clock and
the overlay loses the CLK_h headroom — the study quantifies the end-to-end
FPS cost on a CONV-heavy workload.
"""

from __future__ import annotations

import dataclasses

from conftest import save_artifact
from repro.analysis.efficiency import evaluate_network
from repro.fpga.clocking import plan_double_pump
from repro.fpga.devices import get_device
from repro.fpga.placement import place_overlay
from repro.fpga.timing import TimingModel
from repro.workloads.mlperf import build_model


def test_double_pump_ablation(benchmark, paper_config, vu125):
    placement = place_overlay(vu125, paper_config.d1, paper_config.d2,
                              paper_config.d3)
    model = TimingModel(vu125)

    def clock_both_modes():
        with_dp = model.report(placement, double_pump=True)
        without = model.report(placement, double_pump=False)
        return (
            plan_double_pump(vu125, with_dp.fmax_mhz, double_pump=True),
            plan_double_pump(vu125, without.fmax_mhz, double_pump=False),
        )

    plan_dp, plan_single = benchmark(clock_both_modes)

    net = build_model("AlphaGoZero")  # compact, CONV-dominated
    cfg_dp = dataclasses.replace(
        paper_config, clk_h_mhz=min(650.0, plan_dp.clk_h_mhz), double_pump=True
    )
    cfg_single = dataclasses.replace(
        paper_config, clk_h_mhz=plan_single.clk_h_mhz, double_pump=False
    )
    result_dp = evaluate_network(net, cfg_dp)
    result_single = evaluate_network(net, cfg_single)

    gain = result_dp.fps / result_single.fps
    text = "\n".join(
        [
            "Ablation — double-pump clocking (AlphaGoZero, vu125 overlay)",
            f"double-pump : CLK_h {cfg_dp.clk_h_mhz:6.0f} MHz, "
            f"{result_dp.fps:9.1f} FPS, eff {result_dp.hardware_efficiency:.1%}",
            f"single clock: CLK_h {cfg_single.clk_h_mhz:6.0f} MHz, "
            f"{result_single.fps:9.1f} FPS, eff {result_single.hardware_efficiency:.1%}",
            f"double-pump speedup: {gain:.2f}x",
        ]
    )
    save_artifact("ablation_double_pump.txt", text)

    # CLK_l is BRAM-bound in both modes; removing double-pump halves the
    # MACC clock, so the end-to-end gain should approach ~1.3-2x.
    assert plan_dp.clk_h_mhz > 1.2 * plan_single.clk_h_mhz
    assert gain > 1.2
