"""Shared benchmark fixtures.

The expensive artifacts (full-network compilations) are computed once per
session and shared; each benchmark file times a representative kernel of
its experiment with pytest-benchmark and prints + saves the reproduced
table/figure under ``benchmarks/out/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.efficiency import evaluate_network
from repro.fpga.devices import get_device
from repro.overlay.config import PAPER_EXAMPLE_CONFIG
from repro.workloads.mlperf import build_model

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def save_artifact(name: str, text: str) -> None:
    """Write a reproduced table/figure to benchmarks/out/ and stdout."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / name).write_text(text)
    print(f"\n=== {name} ===\n{text}")


@pytest.fixture(scope="session")
def vu125():
    return get_device("vu125")


@pytest.fixture(scope="session")
def virtex():
    return get_device("7vx330t")


@pytest.fixture(scope="session")
def paper_config():
    return PAPER_EXAMPLE_CONFIG


@pytest.fixture(scope="session")
def googlenet_result(paper_config):
    """GoogLeNet compiled on the paper's example overlay (Objective 1)."""
    return evaluate_network(build_model("GoogLeNet"), paper_config)


@pytest.fixture(scope="session")
def resnet50_result(paper_config):
    """ResNet50 compiled on the paper's example overlay (Objective 1)."""
    return evaluate_network(build_model("ResNet50"), paper_config)
