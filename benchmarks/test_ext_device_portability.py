"""Extension: deploy the overlay across the whole device catalogue.

The paper claims FTDL "facilitates the users to deploy it on most FPGA
devices while maintaining a high fmax" (§III-C).  This study picks, for
every catalogued part, the largest overlay its column geometry hosts,
and checks timing plus end-to-end AlphaGoZero throughput scaling.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.analysis.efficiency import evaluate_network
from repro.fpga.devices import get_device, list_devices
from repro.fpga.placement import place_overlay
from repro.fpga.timing import TimingModel
from repro.overlay.config import OverlayConfig
from repro.workloads.mlperf import build_model

#: Largest grid per device respecting the §III-D column constraints and
#: the BRAM budget (each SuperBlock adds 2 PSumBUF BRAM18s, so parts with
#: a 1:1 DSP:BRAM ratio cannot fill every DSP column).
FULL_GRIDS = {
    "7vx330t": (10, 7, 16),
    "7vx690t": (12, 17, 15),
    "vu125": (12, 5, 20),
    "vu9p": (12, 28, 20),
    "zu7ev": (12, 8, 14),
}


def test_device_portability(benchmark):
    def sweep():
        rows = []
        for name in list_devices():
            device = get_device(name)
            grid = FULL_GRIDS[name]
            placement = place_overlay(device, *grid)
            report = TimingModel(device).report(placement)
            rows.append((name, grid, placement.n_dsp_used, report))
        return rows

    rows = benchmark(sweep)

    net = build_model("AlphaGoZero")
    lines = [
        "Device portability — largest overlay per catalogued part",
        f"{'device':>9s} {'grid':>14s} {'DSPs':>6s} {'fmax':>6s} "
        f"{'%peak':>7s} {'AGZ FPS':>9s} {'AGZ eff':>8s}",
    ]
    measurements = []
    for name, grid, dsps, report in rows:
        config = OverlayConfig(*grid, clk_h_mhz=float(int(report.fmax_mhz)))
        result = evaluate_network(net, config)
        lines.append(
            f"{name:>9s} {str(grid):>14s} {dsps:6d} {report.fmax_mhz:6.0f} "
            f"{report.fmax_fraction:7.1%} {result.fps:9.1f} "
            f"{result.hardware_efficiency:8.1%}"
        )
        measurements.append((dsps, result.fps, result.hardware_efficiency))
    lines.append(
        "note: AlphaGoZero's 19x19/64-channel layers saturate the largest "
        "grids - utilization, not fmax, caps the biggest parts."
    )
    save_artifact("ext_device_portability.txt", "\n".join(lines))

    # Every part clears the 88 % claim - the portability statement.
    for name, _grid, _dsps, report in rows:
        assert report.fmax_fraction >= 0.88, name
    measurements.sort()
    # More DSPs help until the small model saturates the grid ...
    assert measurements[-1][1] > 1.5 * measurements[0][1]
    # ... and the saturation is visible as an efficiency drop.
    assert measurements[-1][2] < measurements[0][2]
