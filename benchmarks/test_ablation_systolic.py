"""Ablation: FTDL vs an implemented boundary-fed systolic array.

End-to-end contrast behind the paper's introduction: same device, same
DSP budget (~1156 PEs vs 1200 TPEs), but the systolic array pays the
architecture-layout mismatch in operating frequency and the fill/drain
overheads in utilization.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.baselines.systolic import SystolicArray
from repro.workloads.mlperf import build_model


def test_ftdl_vs_systolic(benchmark, vu125, googlenet_result):
    net = build_model("GoogLeNet")
    array = SystolicArray(vu125, 34, 34)  # 1156 PEs, the densest square fit

    run = benchmark(array.run_network, net)
    systolic_fps = 1.0 / run.seconds
    ftdl = googlenet_result

    text = "\n".join(
        [
            "FTDL vs boundary-fed systolic array — GoogLeNet on vu125",
            f"FTDL    : 1200 TPEs @ {ftdl.config.clk_h_mhz:4.0f} MHz, "
            f"{ftdl.fps:8.1f} FPS, eff {ftdl.hardware_efficiency:.1%}",
            f"systolic: {array.n_pe} PEs @ {array.fmax_mhz:4.0f} MHz, "
            f"{systolic_fps:8.1f} FPS, eff {run.hardware_efficiency:.1%}",
            f"FTDL advantage: {ftdl.fps / systolic_fps:.1f}x",
        ]
    )
    save_artifact("ablation_systolic.txt", text)

    # The frequency gap alone is > 2.5x; end-to-end the gap must be too.
    assert ftdl.fps / systolic_fps > 2.5
    assert array.fmax_mhz < 250.0
