"""Extension: quantization precision sweep (§II-B1 / conclusion).

The paper deploys 16-bit fixed-point weights and points at aggressive
quantization as future work on top of FTDL.  This study sweeps the
quantizer width on representative CONV and MM layers through the bit-true
integer pipeline and reports output SQNR — locating 16 bit far above the
fidelity cliff and quantifying the headroom lower precisions would buy.
"""

from __future__ import annotations

import numpy as np

from conftest import save_artifact
from repro.analysis.quantization import precision_sweep
from repro.workloads.mlperf import build_model

BIT_WIDTHS = (4, 6, 8, 10, 12, 14, 16)


def test_quantization_sweep(benchmark):
    rng = np.random.default_rng(16)
    net = build_model("GoogLeNet")
    conv = next(l for l in net.accelerated_layers() if l.name == "3a.b2.3x3")
    mm = next(l for l in net.accelerated_layers() if l.name == "fc")

    def sweep_both():
        return {
            "conv(3a.b2.3x3)": precision_sweep(conv, rng, BIT_WIDTHS),
            "mm(fc)": precision_sweep(mm, rng, BIT_WIDTHS),
        }

    results = benchmark.pedantic(sweep_both, rounds=1, iterations=1)

    lines = ["Quantization sweep — output SQNR (dB) vs operand bits",
             f"{'bits':>5s} " + " ".join(f"{name:>18s}" for name in results)]
    for i, bits in enumerate(BIT_WIDTHS):
        row = f"{bits:5d} "
        row += " ".join(
            f"{reports[i].sqnr_db:18.1f}" for reports in results.values()
        )
        lines.append(row)
    save_artifact("ext_quantization.txt", "\n".join(lines))

    for name, reports in results.items():
        sqnrs = [r.sqnr_db for r in reports]
        # Monotone improvement, ~6 dB/bit slope, 16-bit comfortably high.
        assert sqnrs == sorted(sqnrs), name
        slope = (sqnrs[-1] - sqnrs[0]) / (BIT_WIDTHS[-1] - BIT_WIDTHS[0])
        assert 4.0 < slope < 8.0, name
        assert sqnrs[-1] > 60.0, name
        # 8-bit already exceeds the ~35-40 dB rule of thumb for intact
        # classification accuracy — the headroom the conclusion points at.
        eight_bit = sqnrs[BIT_WIDTHS.index(8)]
        assert eight_bit > 30.0, name
