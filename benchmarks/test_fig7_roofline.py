"""Fig. 7: roofline visualization of the top-200 schedules for one CONV
layer under Objective 1 (performance) and Objective 2 (balance).

The paper's observations to reproduce:
* Obj. 1 solutions reach near-roof performance but mostly at low WBUF
  efficiency (E_WBUF ~ 0.2 in the paper's example);
* Obj. 2 solutions all sit at high E_WBUF (~ 1) with only a slight
  performance loss, saving ~5x WBUF storage.
"""

from __future__ import annotations

import statistics

from conftest import OUT_DIR, save_artifact
from repro.analysis.ascii_plot import scatter_plot
from repro.analysis.svg_plot import svg_scatter
from repro.analysis.roofline import ridge_intensity, roofline_points
from repro.compiler.search import ScheduleSearch
from repro.workloads.layers import ConvLayer
from repro.workloads.mlperf import build_model

TOP_K = 200


def _example_layer() -> ConvLayer:
    """The 3x3 CONV of inception 3a: an early layer whose minimum-latency
    schedules must split output rows across the grid and therefore
    duplicate weights — the regime where Fig. 7's Obj1/Obj2 contrast
    appears."""
    net = build_model("GoogLeNet")
    return next(
        l for l in net.accelerated_layers() if l.name == "3a.b2.3x3"
    )


def _marker(e_wbuf: float) -> str:
    """Bin WBUF efficiency into marker characters (the colour axis)."""
    if e_wbuf >= 0.8:
        return "#"
    if e_wbuf >= 0.5:
        return "+"
    return "."


def _chart(points, title: str) -> str:
    return scatter_plot(
        [p.intensity_ops_per_byte for p in points],
        [p.attained_gops for p in points],
        markers=[_marker(p.e_wbuf) for p in points],
        title=title + "   (marker: # E>=0.8, + E>=0.5, . E<0.5)",
        log_x=True,
    )


def _summary(name, points) -> str:
    mean_e = statistics.mean(p.e_wbuf for p in points)
    best = max(p.attained_gops for p in points)
    return (
        f"{name}: {len(points)} solutions, best {best:.0f} GOPS, "
        f"mean E_WBUF {mean_e:.2f}"
    )


def test_fig7_roofline(benchmark, paper_config):
    layer = _example_layer()

    def top200_performance():
        return ScheduleSearch(
            layer, paper_config, objective="performance", top_k=TOP_K
        ).run()

    perf_schedules = benchmark.pedantic(
        top200_performance, rounds=1, iterations=1
    )
    bal_schedules = ScheduleSearch(
        layer, paper_config, objective="balance", top_k=TOP_K
    ).run()

    perf_points = roofline_points(perf_schedules)
    bal_points = roofline_points(bal_schedules)

    text = "\n\n".join(
        [
            f"Fig. 7 — roofline for {layer.name} on D1=12, D2=5, D3=20 "
            f"@ {paper_config.clk_h_mhz:.0f} MHz "
            f"(peak {paper_config.peak_gops:.0f} GOPS, ridge at "
            f"{ridge_intensity(paper_config):.0f} ops/byte)",
            "(a) Objective 1 — performance",
            _chart(perf_points, "top-200 by performance"),
            _summary("Obj1", perf_points),
            "(b) Objective 2 — balance",
            _chart(bal_points, "top-200 by balance score"),
            _summary("Obj2", bal_points),
        ]
    )
    save_artifact("fig7_roofline.txt", text)
    OUT_DIR.mkdir(exist_ok=True)
    for tag, points in (("a_performance", perf_points), ("b_balance", bal_points)):
        (OUT_DIR / f"fig7{tag}.svg").write_text(svg_scatter(
            [p.intensity_ops_per_byte for p in points],
            [p.attained_gops for p in points],
            colors=[p.e_wbuf for p in points],
            title=f"Fig. 7({tag[0]}) - top-200 schedules, {tag[2:]} objective",
            x_label="operational intensity (ops/byte, log)",
            y_label="attained GOPS",
            log_x=True,
        ))

    # --- paper's observations ----------------------------------------- #
    best_perf = perf_points[0]
    best_bal = bal_points[0]
    # (b) clusters at high WBUF efficiency.
    mean_bal_e = statistics.mean(p.e_wbuf for p in bal_points)
    assert mean_bal_e > 0.8
    # (a) trades WBUF efficiency for speed.
    mean_perf_e = statistics.mean(p.e_wbuf for p in perf_points)
    assert mean_bal_e > mean_perf_e
    assert mean_perf_e < 0.5
    # Obj2 saves substantial WBUF storage (paper: ~5x on its layer) ...
    assert best_bal.e_wbuf / best_perf.e_wbuf > 2.0
    # ... at only a slight performance loss.
    assert best_bal.attained_gops > 0.7 * best_perf.attained_gops
    # Obj1's winner sits near the roof.
    assert best_perf.attained_gops > 0.8 * paper_config.peak_gops
