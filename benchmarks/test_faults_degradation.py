"""Graceful degradation: masked TPEs vs modeled GoogLeNet throughput.

The acceptance claim for fault-aware compilation: masking 10% of the
paper overlay's 1200 TPEs must cost at most 15% of modeled GoogLeNet
throughput.  Physically, DSP/BRAM tile faults cluster — a bad DSP
column or a failing BRAM bank takes out whole SuperBlock rows, not
1200 independent coin flips — so the headline scenario masks two full
SB rows (2 x 12 x 5 = 120 TPEs, exactly 10%).  The sub-grid derivation
then keeps the other 18 rows intact (12x5x18, 90% of TPEs) and the
recompiled schedules recover throughput proportional to the surviving
grid.  A scattered-mask curve is saved alongside as the pessimistic
bound: uniform random tile loss shortens the *uniform* chain every
SuperBlock must match, so it degrades faster — that contrast is the
argument for row/column-level repair granularity.
"""

from __future__ import annotations

import pytest
from conftest import save_artifact

from repro.compiler.search import schedule_network
from repro.faults import (
    DegradationReport,
    FaultMask,
    degraded_compile,
    random_tpe_mask,
)
from repro.workloads.mlperf import build_model


def _row_mask(config, n_rows: int) -> FaultMask:
    """Mask the last ``n_rows`` full SuperBlock rows of the grid."""
    return FaultMask.from_coords([
        (row, col, pos)
        for row in range(config.d3 - n_rows, config.d3)
        for col in range(config.d2)
        for pos in range(config.d1)
    ])


@pytest.fixture(scope="module")
def degrade(paper_config):
    """Memoized fault-aware compile: the healthy GoogLeNet compilation
    runs once, and each distinct sub-grid compiles once."""
    googlenet = build_model("GoogLeNet")
    healthy_cycles = sum(
        s.cycles for s in schedule_network(googlenet, paper_config)
    )
    memo: dict[frozenset, DegradationReport] = {}

    def run(mask: FaultMask) -> DegradationReport:
        if mask.masked not in memo:
            memo[mask.masked] = degraded_compile(
                googlenet, paper_config, mask,
                healthy_cycles=healthy_cycles,
            )
        return memo[mask.masked]

    return run


def test_10pct_clustered_mask_degrades_at_most_15pct(degrade,
                                                     paper_config):
    mask = _row_mask(paper_config, 2)
    assert len(mask) == round(0.10 * paper_config.n_tpe)
    report = degrade(mask)
    assert report.degraded.grid == (12, 5, 18)
    assert report.tpe_fraction_kept == pytest.approx(0.90)
    # The acceptance bound: <= 15% modeled throughput loss at 10% masked.
    assert report.throughput_factor >= 0.85, report.describe()
    # And no pathological efficiency collapse on the sub-grid.
    assert report.degraded_efficiency >= 0.9 * report.healthy_efficiency


def test_degradation_is_monotone_in_masked_rows(degrade, paper_config):
    factors = [
        degrade(_row_mask(paper_config, n_rows)).throughput_factor
        for n_rows in (0, 2, 4)
    ]
    assert factors[0] == 1.0
    assert factors[0] >= factors[1] >= factors[2]
    # 20% masked should still retain the lion's share of throughput.
    assert factors[2] >= 0.70


def test_throughput_vs_masked_fraction_curve(degrade, paper_config):
    lines = [
        "GoogLeNet on 12x5x20 @ 650 MHz — throughput vs masked TPEs",
        "",
        f"{'scenario':<22s} {'masked':>7s} {'grid':>9s} {'kept':>6s} "
        f"{'throughput':>11s} {'eff':>7s}",
    ]
    rows = [
        (f"clustered {n} row(s)", _row_mask(paper_config, n))
        for n in (2, 4)
    ]
    rows.append((
        "scattered 5%",
        FaultMask.from_coords(random_tpe_mask(paper_config, 0.05, seed=1)),
    ))
    for label, mask in rows:
        report = degrade(mask)
        d = report.degraded
        lines.append(
            f"{label:<22s} {report.masked_fraction:>6.1%} "
            f"{f'{d.d1}x{d.d2}x{d.d3}':>9s} "
            f"{report.tpe_fraction_kept:>6.1%} "
            f"{report.throughput_factor:>11.1%} "
            f"{report.degraded_efficiency:>7.1%}"
        )
        # Universal sanity: the compiler never does worse than the
        # masked share would predict by more than 2x.
        assert report.throughput_factor >= \
            0.5 * report.tpe_fraction_kept, report.describe()
    save_artifact("faults_degradation.txt", "\n".join(lines))
