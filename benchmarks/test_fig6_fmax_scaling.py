"""Fig. 6: post-place-and-route fmax across seven scale-up configurations.

(a) Virtex-7 7vx330t and (b) UltraScale vu125, exactly as in the paper,
plus the boundary-fed systolic baseline as the contrast series that
motivates the whole design (§I's architecture-layout mismatch).
"""

from __future__ import annotations

from conftest import OUT_DIR, save_artifact
from repro.analysis.ascii_plot import line_plot
from repro.analysis.svg_plot import svg_lines
from repro.fpga.placement import place_overlay, place_systolic
from repro.fpga.timing import TimingModel

#: Seven scale-up points per device (paper Fig. 6 sweeps to 100 % DSP).
VU125_CONFIGS = [
    (12, 1, 5), (12, 1, 10), (12, 1, 20), (12, 2, 20),
    (12, 3, 20), (12, 4, 20), (12, 5, 20),
]
VIRTEX_CONFIGS = [
    (10, 1, 4), (10, 1, 8), (10, 1, 16), (10, 2, 16),
    (10, 4, 16), (10, 6, 16), (10, 7, 16),
]
SYSTOLIC_SIZES = [(8, 8), (12, 12), (16, 16), (20, 20), (24, 24), (28, 28), (33, 33)]


def _sweep_overlay(device, configs):
    model = TimingModel(device)
    rows = []
    for cfg in configs:
        placement = place_overlay(device, *cfg)
        report = model.report(placement)
        rows.append((cfg, placement.n_dsp_used, report.fmax_mhz,
                     report.fmax_fraction))
    return rows


def _sweep_systolic(device, sizes):
    model = TimingModel(device)
    rows = []
    for r, c in sizes:
        placement = place_systolic(device, r, c)
        report = model.report(placement, double_pump=False)
        rows.append(((r, c), r * c, report.fmax_mhz))
    return rows


def _render(device_name, overlay_rows, systolic_rows) -> str:
    lines = [f"Fig. 6 — {device_name}: post-P&R fmax vs design scale"]
    lines.append(f"{'config (D1,D2,D3)':>20s} {'DSPs':>6s} {'fmax MHz':>9s} {'%peak':>7s}")
    for cfg, dsps, fmax, frac in overlay_rows:
        lines.append(f"{str(cfg):>20s} {dsps:6d} {fmax:9.0f} {frac:7.1%}")
    lines.append("")
    lines.append(f"{'systolic baseline':>20s} {'PEs':>6s} {'fmax MHz':>9s}")
    for shape, pes, fmax in systolic_rows:
        lines.append(f"{str(shape):>20s} {pes:6d} {fmax:9.0f}")
    xs = [float(dsps) for _, dsps, _, _ in overlay_rows]
    series = {
        "ftdl": [fmax for _, _, fmax, _ in overlay_rows],
        "systolic": [fmax for _, _, fmax in systolic_rows],
    }
    chart = line_plot(xs, series,
                      title=f"{device_name}: fmax (MHz) vs DSPs used")
    OUT_DIR.mkdir(exist_ok=True)
    svg_name = f"fig6_{device_name.split()[0].lower()}.svg"
    (OUT_DIR / svg_name).write_text(svg_lines(
        xs, series,
        title=f"Fig. 6 - {device_name}: post-P&R fmax vs scale",
        x_label="DSPs used (FTDL) / PEs (systolic)",
        y_label="fmax (MHz)",
    ))
    return "\n".join(lines) + "\n\n" + chart + "\n"


def test_fig6a_virtex(benchmark, virtex):
    """Fig. 6(a): 7vx330t — fmax stabilizes above 620 MHz."""
    rows = benchmark(_sweep_overlay, virtex, VIRTEX_CONFIGS)
    systolic = _sweep_systolic(virtex, SYSTOLIC_SIZES)
    save_artifact("fig6a_virtex.txt", _render("Virtex-7 7vx330t", rows, systolic))
    assert all(fmax > 620.0 for _, _, fmax, _ in rows)
    assert all(frac >= 0.88 for _, _, _, frac in rows)
    assert rows[-1][1] == virtex.n_dsp_total  # 100 % DSP utilization


def test_fig6b_ultrascale(benchmark, vu125):
    """Fig. 6(b): vu125 — fmax stabilizes above 650 MHz."""
    rows = benchmark(_sweep_overlay, vu125, VU125_CONFIGS)
    systolic = _sweep_systolic(vu125, SYSTOLIC_SIZES)
    save_artifact("fig6b_ultrascale.txt", _render("UltraScale vu125", rows, systolic))
    assert all(fmax > 650.0 for _, _, fmax, _ in rows)
    assert all(frac >= 0.88 for _, _, _, frac in rows)
    assert rows[-1][1] == vu125.n_dsp_total


def test_fig6_mismatch_contrast(benchmark, vu125):
    """The motivating contrast: the systolic baseline's fmax collapses
    with scale while FTDL's stays flat."""
    systolic = benchmark(_sweep_systolic, vu125, SYSTOLIC_SIZES)
    fmaxes = [fmax for _, _, fmax in systolic]
    assert fmaxes[0] > fmaxes[-1]
    assert fmaxes[-1] < 250.0  # "most prior designs below 250 MHz"
    overlay = _sweep_overlay(vu125, VU125_CONFIGS)
    assert overlay[-1][2] > 2.5 * fmaxes[-1]
