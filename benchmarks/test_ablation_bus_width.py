"""Ablation: on-chip bus width sensitivity.

The paper's Eqn 8 charges each LoopL round only the T-tile footprint,
which implies the ActBUS delivers one word per TPE per cycle (this
repository's default, a 16*D1-bit row bus).  This study sweeps both bus
widths on a representative GoogLeNet layer slice and quantifies how the
interpretation matters.  Measured finding: the scheduler partially
*adapts* to narrow buses by choosing higher-reuse tilings, so the
efficiency cost is real but much smaller than the raw bandwidth ratio.
"""

from __future__ import annotations

import dataclasses

from conftest import save_artifact
from repro.compiler.cache import ScheduleCache
from repro.workloads.mlperf import build_model

#: (actbus words/cycle or None = one/TPE, psumbus words/cycle)
SWEEP = [
    (1.0, 1.0),
    (2.0, 2.0),
    (4.0, 4.0),
    (None, 4.0),
    (None, 8.0),
]

#: Representative slice: the inception-3a module plus conv2 (mix of 1x1,
#: 3x3, 5x5 shapes; small enough to recompile per bus setting).
LAYER_NAMES = (
    "conv2.reduce", "conv2.3x3", "3a.b1.1x1", "3a.b2.reduce",
    "3a.b2.3x3", "3a.b3.reduce", "3a.b3.5x5", "3a.b4.proj",
)


def test_bus_width_sensitivity(benchmark, paper_config):
    net = build_model("GoogLeNet")
    layers = [l for l in net.accelerated_layers() if l.name in LAYER_NAMES]
    assert len(layers) == len(LAYER_NAMES)
    maccs = sum(l.maccs for l in layers)

    def sweep():
        rows = []
        for act_wpc, psum_wpc in SWEEP:
            config = dataclasses.replace(
                paper_config,
                actbus_words_per_cycle=act_wpc,
                psumbus_words_per_cycle=psum_wpc,
            )
            cache = ScheduleCache(config)
            cycles = sum(cache.schedule(l).cycles for l in layers)
            eff = maccs / (config.n_tpe * cycles)
            rows.append((act_wpc, psum_wpc, cycles, eff))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Bus-width sensitivity — conv2 + inception-3a slice of GoogLeNet",
        f"{'ActBUS w/cyc':>13s} {'PSumBUS w/cyc':>14s} {'cycles':>10s} "
        f"{'slice eff':>10s}",
    ]
    for act_wpc, psum_wpc, cycles, eff in rows:
        act_label = "1/TPE" if act_wpc is None else f"{act_wpc:.0f}"
        lines.append(
            f"{act_label:>13s} {psum_wpc:14.0f} {cycles:10,d} {eff:10.1%}"
        )
    save_artifact("ablation_bus_width.txt", "\n".join(lines))

    effs = [eff for *_rest, eff in rows]
    # Wider buses never hurt.
    assert all(b >= a * 0.999 for a, b in zip(effs, effs[1:]))
    # Narrow buses measurably cost efficiency — but far less than the raw
    # bandwidth ratio, because the scheduler adapts (it picks tiles with
    # more on-chip reuse when the buses shrink).  The default width
    # recovers the paper's >80 % regime on this slice.
    assert effs[-1] > 1.05 * effs[0]
    assert effs[-1] > 0.85
    assert effs[0] > 0.5  # adaptive scheduling keeps narrow buses viable
