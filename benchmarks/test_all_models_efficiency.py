"""Extension: hardware efficiency across all five Table I models.

The paper reports end-to-end FPS only for GoogLeNet/ResNet50 but claims
the compiler "maps most DL layers to the overlay with over 80 % hardware
efficiency on average".  This bench runs every benchmark model through the
compiler on the paper's platform and reports the per-model network
efficiency — including the batch-1 LSTM, which is legitimately DRAM-bound
(weights stream every frame and each word feeds exactly one MACC).
"""

from __future__ import annotations

import dataclasses

from conftest import save_artifact
from repro.analysis.efficiency import evaluate_network
from repro.workloads.mlperf import MLPERF_MODELS, build_model


def test_all_models(benchmark, paper_config, googlenet_result, resnet50_result):
    results = {
        "GoogLeNet": googlenet_result,
        "ResNet50": resnet50_result,
    }
    small = ("AlphaGoZero", "Sentimental-seqCNN", "Sentimental-seqLSTM")

    def evaluate_small_models():
        return {
            name: evaluate_network(build_model(name), paper_config)
            for name in small
        }

    results.update(benchmark.pedantic(evaluate_small_models, rounds=1,
                                      iterations=1))

    # The seqLSTM at batch 1 is weight-bandwidth-bound; with its weights
    # resident (multi-FPGA deployment, §II-B1) the overlay's real
    # efficiency on MM shows up.
    resident = dataclasses.replace(paper_config, weights_resident=True)
    lstm_resident = evaluate_network(
        build_model("Sentimental-seqLSTM"), resident
    )

    lines = [
        f"{'model':22s} {'FPS':>10s} {'HW eff':>8s} {'bound (majority)':>18s}",
    ]
    for name in MLPERF_MODELS:
        result = results[name]
        bounds = [l.bottleneck for l in result.layers]
        majority = max(set(bounds), key=bounds.count)
        lines.append(
            f"{name:22s} {result.fps:10.1f} "
            f"{result.hardware_efficiency:8.1%} {majority:>18s}"
        )
    lines.append(
        f"{'seqLSTM (resident)':22s} {lstm_resident.fps:10.1f} "
        f"{lstm_resident.hardware_efficiency:8.1%} "
        f"{'(weights preloaded)':>18s}"
    )
    save_artifact("all_models_efficiency.txt", "\n".join(lines))

    # CONV-dominated models clear the paper's 80 % band; the streamed
    # batch-1 LSTM is bandwidth-bound by arithmetic necessity
    # (2 ops per streamed 2-byte word at 26 GB/s caps it at ~26 GOPS).
    for name in ("GoogLeNet", "ResNet50", "AlphaGoZero"):
        assert results[name].hardware_efficiency > 0.75, name
    assert results["Sentimental-seqCNN"].hardware_efficiency > 0.25
    assert results["Sentimental-seqLSTM"].hardware_efficiency < 0.05
    # Residency lifts the LSTM by an order of magnitude, up to the
    # double-pump ceiling for batch-1 MM (each weight feeds one MACC, so
    # the DSP stalls every other CLK_h cycle: efficiency caps at 50 %).
    assert (
        lstm_resident.hardware_efficiency
        > 5 * results["Sentimental-seqLSTM"].hardware_efficiency
    )
    assert lstm_resident.hardware_efficiency <= 0.5
