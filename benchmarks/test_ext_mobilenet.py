"""Extension: MobileNetV1 — depthwise convolutions on the overlay.

The paper conjectures FTDL "maps most DL layers"; depthwise-separable
networks are the canonical stress case because a depthwise layer offers
no cross-channel weight reuse: its ``M`` loop selects the input channel,
so the SIMD columns (D2) cannot share activations and sit idle
(see repro.compiler.adjacency).  This bench quantifies the split: the
pointwise (1x1) layers keep the paper's >80 % regime while the depthwise
layers cap far below it.  FPS stays high because depthwise is only ~3 %
of MobileNet's MACCs — but those MACCs consume nearly half the cycles,
which is the known depthwise bottleneck of weight-reuse accelerators.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.analysis.efficiency import evaluate_network
from repro.workloads.models import build_mobilenet_v1


def test_mobilenet_v1(benchmark, paper_config):
    net = build_mobilenet_v1()

    def evaluate():
        return evaluate_network(net, paper_config)

    result = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    depthwise = [
        l for l in result.layers
        if getattr(l.schedule.layer, "groups", 1) > 1
    ]
    pointwise = [
        l for l in result.layers
        if getattr(l.schedule.layer, "groups", 1) == 1
        and getattr(l.schedule.layer, "kernel_h", 0) == 1
    ]

    def class_eff(layers):
        maccs = sum(l.schedule.layer.maccs for l in layers)
        cycles = sum(l.cycles for l in layers)
        return maccs / (paper_config.n_tpe * cycles), cycles

    dw_eff, dw_cycles = class_eff(depthwise)
    pw_eff, pw_cycles = class_eff(pointwise)
    dw_maccs = sum(l.schedule.layer.maccs for l in depthwise)

    text = "\n".join([
        "MobileNetV1 on the paper overlay (1200 TPEs @ 650 MHz)",
        f"end to end    : {result.fps:8.1f} FPS, "
        f"network eff {result.hardware_efficiency:.1%}",
        f"depthwise 3x3 : {len(depthwise)} layers, eff {dw_eff:6.1%}, "
        f"{dw_cycles:,} cycles "
        f"({dw_maccs / net.accelerated_maccs:.1%} of MACCs)",
        f"pointwise 1x1 : {len(pointwise)} layers, eff {pw_eff:6.1%}, "
        f"{pw_cycles:,} cycles",
        "finding: depthwise layers cannot use the SIMD columns (no "
        "activation sharing across output channels); 3% of the MACCs "
        "consume ~half the cycles — the classic depthwise bottleneck "
        "of weight-reuse accelerators.  FPS stays high regardless.",
    ])
    save_artifact("ext_mobilenet.txt", text)

    assert len(depthwise) == 13
    # Pointwise layers live in the paper's regime; depthwise cannot.
    assert pw_eff > 0.7
    assert dw_eff < 0.5
    assert pw_eff > 2 * dw_eff
    # Depthwise is a small MACC share, so MobileNet still runs fast.
    assert dw_maccs / net.accelerated_maccs < 0.1
    assert result.fps > 500.0
