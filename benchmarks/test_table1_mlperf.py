"""Table I: MLPerf-style benchmark characterization.

Regenerates the paper's Table I — per-model operation breakdown across
CONV / MM / EWOP and the 16-bit weight budget — from the layer-exact
network definitions, and checks the paper's headline premise (CONV + MM
dominate every model).
"""

from __future__ import annotations

from conftest import save_artifact
from repro.workloads.mlperf import MLPERF_MODELS, build_model, table1_rows

#: The paper's printed Table I, for side-by-side reporting.
PAPER_TABLE1 = {
    "GoogLeNet": (99.73, 0.07, 0.20, "13.7M"),
    "ResNet50": (99.67, 0.05, 0.27, "51M"),
    "AlphaGoZero": (99.86, 0.08, 0.06, "2.08M"),
    "Sentimental-seqCNN": (89.86, 0.15, 9.99, "345.06K"),
    "Sentimental-seqLSTM": (0.00, 99.89, 0.11, "39.9M"),
}


def _render_table1() -> str:
    lines = [
        f"{'Model':22s} {'Application':20s} "
        f"{'CONV%':>7s} {'MM%':>7s} {'EWOP%':>7s} {'Weights':>9s}"
        f"   paper: (CONV/MM/EWOP/weights)"
    ]
    for row in table1_rows():
        paper = PAPER_TABLE1[row.model]
        lines.append(
            f"{row.model:22s} {row.application:20s} "
            f"{row.conv_pct:7.2f} {row.mm_pct:7.2f} {row.ewop_pct:7.2f} "
            f"{row.format_weights():>9s}"
            f"   ({paper[0]:.2f}/{paper[1]:.2f}/{paper[2]:.2f}/{paper[3]})"
        )
    return "\n".join(lines)


def test_table1_characterization(benchmark):
    """Time the full characterization pass and emit the reproduced table."""
    rows = benchmark(table1_rows)
    save_artifact("table1_mlperf.txt", _render_table1())

    by_model = {r.model: r for r in rows}
    for model, (conv, mm, ewop, _weights) in PAPER_TABLE1.items():
        row = by_model[model]
        # Shape: the dominant category matches the paper's.
        dominant = max(
            ("conv", row.conv_pct), ("mm", row.mm_pct), ("ewop", row.ewop_pct),
            key=lambda kv: kv[1],
        )[0]
        paper_dominant = max(
            ("conv", conv), ("mm", mm), ("ewop", ewop), key=lambda kv: kv[1]
        )[0]
        assert dominant == paper_dominant, model
        assert row.conv_pct + row.mm_pct >= 89.0


def test_table1_weight_budgets(benchmark):
    """Weight budgets within 5 % of the paper's column."""
    targets = {
        "GoogLeNet": 13.7e6,
        "ResNet50": 51e6,
        "AlphaGoZero": 2.08e6,
        "Sentimental-seqCNN": 345.06e3,
        "Sentimental-seqLSTM": 39.9e6,
    }

    def weight_bytes():
        return {name: build_model(name).weight_bytes for name in MLPERF_MODELS}

    measured = benchmark(weight_bytes)
    for model, target in targets.items():
        assert abs(measured[model] - target) / target < 0.05, model
