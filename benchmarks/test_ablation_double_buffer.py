"""Ablation: double-buffered control flow (§III-E).

With double buffering off, communication and computation serialize
(C_exe = sum instead of Eqn 12's max); the study quantifies the hardware
efficiency drop, which is largest on communication-heavy layers.
"""

from __future__ import annotations

import dataclasses

from conftest import save_artifact
from repro.analysis.efficiency import evaluate_network
from repro.workloads.mlperf import build_model


def test_double_buffer_ablation(benchmark, paper_config, googlenet_result):
    serial_config = dataclasses.replace(paper_config, double_buffer=False)
    net = build_model("GoogLeNet")

    def evaluate_serial():
        return evaluate_network(net, serial_config)

    serial = benchmark.pedantic(evaluate_serial, rounds=1, iterations=1)
    overlapped = googlenet_result

    slowdown = overlapped.fps / serial.fps
    text = "\n".join(
        [
            "Ablation — double buffering (GoogLeNet, paper overlay config)",
            f"double-buffered: {overlapped.fps:8.1f} FPS, "
            f"eff {overlapped.hardware_efficiency:.1%}",
            f"serialized     : {serial.fps:8.1f} FPS, "
            f"eff {serial.hardware_efficiency:.1%}",
            f"overlap speedup: {slowdown:.2f}x",
        ]
    )
    save_artifact("ablation_double_buffer.txt", text)

    assert serial.fps < overlapped.fps
    assert slowdown > 1.15
    assert serial.hardware_efficiency < overlapped.hardware_efficiency
