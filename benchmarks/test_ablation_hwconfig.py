"""Ablation: Objective 3 — hardware shape at fixed TPE cost (§IV-D3).

Sweeps (D1, D2, D3) factorizations of the 1200-TPE budget under the
vu125's layout constraints for one representative CONV layer, confirming
the paper's example configuration sits near the top of the ranking.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.compiler.hwsearch import search_hardware_config
from repro.workloads.mlperf import build_model


def test_objective3_grid_sweep(benchmark, paper_config, vu125):
    net = build_model("GoogLeNet")
    # conv1 (7x7/2, 3 input channels) is the shape where the grid's D1/D3
    # split genuinely matters: deep cascades (big D1) cut the partial-sum
    # traffic that binds this layer, shallow ones pay for it.
    layer = next(l for l in net.accelerated_layers() if l.name == "conv1")

    def sweep():
        return search_hardware_config(
            layer, paper_config, device=vu125,
            spatial_beam=40, temporal_beam=60,
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"Objective 3 — best (D1, D2, D3) for {layer.name} at 1200 TPEs "
        f"on vu125 (top 12 of {len(result.ranking)})",
        f"{'grid':>14s} {'cycles':>9s} {'eff':>7s} {'E_WBUF':>7s}",
    ]
    for grid, schedule in result.ranking[:12]:
        est = schedule.estimate
        lines.append(
            f"{str(grid):>14s} {est.c_exe:9d} "
            f"{est.hardware_efficiency:7.1%} {est.e_wbuf:7.2f}"
        )
    paper_grid = (paper_config.d1, paper_config.d2, paper_config.d3)
    paper_rank = next(
        i for i, (grid, _) in enumerate(result.ranking) if grid == paper_grid
    )
    lines.append(f"paper grid {paper_grid} ranks #{paper_rank + 1}")
    save_artifact("ablation_hwconfig.txt", "\n".join(lines))

    best_cycles = result.best.estimate.c_exe
    paper_cycles = result.ranking[paper_rank][1].estimate.c_exe
    # The paper's example grid is a sensible choice: within 25 % of the
    # best shape for this layer.
    assert paper_cycles <= 1.25 * best_cycles
    # Grid shape genuinely matters on this layer: the spread is real.
    worst_cycles = result.ranking[-1][1].estimate.c_exe
    assert worst_cycles > 1.2 * best_cycles
