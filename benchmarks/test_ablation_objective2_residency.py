"""Ablation: what Objective 2 buys at network scale (§IV-D2).

Fig. 7 shows Obj. 2 trading a sliver of per-layer speed for ~5x less WBUF
storage; the *reason* is multi-layer residency.  This study plans WBUF
residency for GoogLeNet under both objectives on one vu125 overlay and
compares how many layers fit on chip, the leftover DRAM weight traffic,
and end-to-end FPS once resident layers stop streaming.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.compiler.residency import plan_residency
from repro.workloads.mlperf import build_model


def test_objective2_residency(benchmark, paper_config):
    net = build_model("GoogLeNet")

    def plan_balance():
        return plan_residency(net, paper_config, objective="balance")

    balance = benchmark.pedantic(plan_balance, rounds=1, iterations=1)
    performance = plan_residency(net, paper_config, objective="performance")

    def describe(tag, plan):
        return (
            f"{tag:12s}: {plan.n_resident:3d}/{len(plan.layers)} layers "
            f"resident ({plan.resident_words * 2 / 1e6:5.2f} of "
            f"{plan.budget_words * 2 / 1e6:5.2f} MB WBUF), "
            f"{plan.streamed_bytes_per_frame / 1e6:6.2f} MB/frame still "
            f"streamed, {plan.fps():6.1f} FPS"
        )

    text = "\n".join(
        [
            "Objective 2 at network scale — GoogLeNet WBUF residency on "
            "the paper overlay",
            describe("Obj1 (perf)", performance),
            describe("Obj2 (bal.)", balance),
        ]
    )
    save_artifact("ablation_objective2_residency.txt", text)

    # Objective 2's low-duplication schedules fit more layers on chip and
    # leave less weight traffic on DRAM.
    assert balance.n_resident >= performance.n_resident
    assert (
        balance.streamed_bytes_per_frame
        <= performance.streamed_bytes_per_frame
    )
    # Some layers genuinely become resident (the budget is 2.4 MB versus
    # a 13.98 MB model, so not all).
    assert 0 < balance.n_resident < len(balance.layers)
