"""Ablation: structured search vs random sampling (§IV-D4).

The paper's candidate generation walks the ceiling-divisor tile lattice
under the adjacency matrix.  The control is uniform random sampling of
adjacency-legal mappings at the same evaluation budget; the gap shows
what the structure buys — both in best-found latency and in how much of
the budget even lands on feasible points.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.compiler.randsearch import random_schedule_search
from repro.compiler.search import ScheduleSearch
from repro.workloads.mlperf import build_model

LAYER_NAMES = ("conv2.3x3", "3a.b2.3x3", "4e.b2.3x3")


def test_structured_vs_random(benchmark, paper_config):
    net = build_model("GoogLeNet")
    layers = [l for l in net.accelerated_layers() if l.name in LAYER_NAMES]

    def run_structured():
        results = {}
        for layer in layers:
            search = ScheduleSearch(layer, paper_config)
            results[layer.name] = (search.run()[0], search.candidates_evaluated)
        return results

    structured = benchmark.pedantic(run_structured, rounds=1, iterations=1)

    lines = [
        "Search strategy — structured lattice vs random sampling "
        "(equal evaluation budget)",
        f"{'layer':>12s} {'budget':>8s} {'structured cyc':>15s} "
        f"{'random cyc':>11s} {'gap':>7s} {'random feasible':>16s}",
    ]
    gaps = []
    for layer in layers:
        best, budget = structured[layer.name]
        random_best, feasible = random_schedule_search(
            layer, paper_config, budget=budget, seed=42
        )
        gap = random_best.estimate.c_exe / best.estimate.c_exe
        gaps.append(gap)
        lines.append(
            f"{layer.name:>12s} {budget:8d} {best.estimate.c_exe:15,d} "
            f"{random_best.estimate.c_exe:11,d} {gap:6.2f}x "
            f"{feasible}/{budget}"
        )
    save_artifact("ablation_search_strategy.txt", "\n".join(lines))

    # Random sampling never beats the structured search and is clearly
    # worse somewhere.
    assert all(gap >= 1.0 for gap in gaps)
    assert max(gaps) > 1.3
